"""Differential harness for the distributed worker backend.

Real ``jahob-py worker`` subprocesses stand in for remote machines (the
protocol is the same TCP + handshake either way); the coordinator is a
:class:`~repro.verifier.engine.VerificationEngine` with ``workers=``.  The
contract mirrors the in-process pool's: per-sequent verdicts, prover
attribution, cache provenance and portfolio counters must be bit-identical
to a fresh sequential engine on the same classes -- **including** when a
worker is SIGKILLed mid-run and its in-flight tasks are requeued onto the
survivor.
"""

from __future__ import annotations

import os
import re
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.provers.dispatch import PortfolioSpec, default_portfolio
from repro.verifier.engine import VerificationEngine
from repro.verifier.remote import RemoteWorkerError, RemoteWorkerPool

from test_parallel_differential import (
    FAST_CLASSES,
    TIMEOUT_SCALE,
    aggregate_trace,
    make_engine,
    sequent_trace,
    statistics_trace,
    structures,
)

SECRET = b"differential-test-secret"

_LISTENING = re.compile(r"listening on (\S+)")


class WorkerProcess:
    """One ``jahob-py worker --listen`` subprocess plus its address."""

    def __init__(self, secret_file: Path) -> None:
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parents[2] / "src")
        env["PYTHONPATH"] = src + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        self.proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.verifier.cli",
                "worker",
                "--listen",
                "127.0.0.1:0",
                "--secret-file",
                str(secret_file),
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
        )
        line = self.proc.stdout.readline()
        match = _LISTENING.search(line)
        assert match, f"worker did not announce its address: {line!r}"
        self.address = match.group(1)
        self.pid = self.proc.pid

    def kill(self) -> None:
        if self.proc.poll() is None:
            self.proc.send_signal(signal.SIGKILL)
            self.proc.wait(timeout=10)

    def stop(self) -> None:
        if self.proc.poll() is None:
            self.proc.terminate()
            try:
                self.proc.wait(timeout=10)
            except subprocess.TimeoutExpired:
                self.proc.kill()
        self.proc.stdout.close()


@pytest.fixture()
def secret_file(tmp_path):
    path = tmp_path / "secret"
    path.write_bytes(SECRET + b"\n")
    return path


@pytest.fixture()
def worker_pair(secret_file):
    workers = [WorkerProcess(secret_file), WorkerProcess(secret_file)]
    yield workers
    for worker in workers:
        worker.stop()


def remote_engine(addresses, use_cache: bool = True) -> VerificationEngine:
    return VerificationEngine(
        default_portfolio(with_cache=use_cache).scaled(TIMEOUT_SCALE),
        use_proof_cache=use_cache,
        workers=list(addresses),
        worker_secret=SECRET,
    )


def test_one_worker_class_differential(secret_file):
    worker = WorkerProcess(secret_file)
    try:
        classes = structures(FAST_CLASSES[:2])
        sequential = make_engine(jobs=1, use_cache=True)
        seq_reports = [sequential.verify_class(cls) for cls in classes]
        remote = remote_engine([worker.address])
        remote_reports = [remote.verify_class(cls) for cls in classes]
        for seq_report, rem_report in zip(seq_reports, remote_reports):
            assert sequent_trace(seq_report) == sequent_trace(rem_report)
            assert aggregate_trace(seq_report) == aggregate_trace(rem_report)
        assert statistics_trace(sequential) == statistics_trace(remote)
        stats = remote.last_parallel_stats
        assert stats.backend == "remote"
        # Per-worker provenance: the one worker's label carries host/pid.
        [load] = remote.parallel_stats_total.workers
        assert str(load.pid).endswith(f"/{worker.pid}")
        remote.close()
    finally:
        worker.stop()


def test_two_workers_suite_differential(worker_pair):
    classes = structures(FAST_CLASSES)
    sequential = make_engine(jobs=1, use_cache=True)
    seq_reports = [sequential.verify_class(cls) for cls in classes]
    remote = remote_engine([worker.address for worker in worker_pair])
    suite_reports = remote.verify_suite(classes)
    for seq_report, suite_report in zip(seq_reports, suite_reports):
        assert sequent_trace(seq_report) == sequent_trace(suite_report)
        assert aggregate_trace(seq_report) == aggregate_trace(suite_report)
    assert statistics_trace(sequential) == statistics_trace(remote)
    stats = remote.last_suite_stats
    assert stats.backend == "remote"
    assert (
        stats.dispatched
        + stats.hits_memory
        + stats.hits_disk
        + stats.duplicates_folded
        == stats.sequents_total
    )
    # Both workers actually participated and the load closes.
    assert sum(load.tasks for load in stats.workers) == stats.dispatched
    worker_pids = {worker.pid for worker in worker_pair}
    seen_pids = {int(str(load.pid).rsplit("/", 1)[1]) for load in stats.workers}
    assert seen_pids == worker_pids
    remote.close()


def test_worker_kill_mid_run_requeues_and_stays_identical(worker_pair):
    """The acceptance case: SIGKILL one of two workers mid-suite; the
    surviving worker absorbs the requeued tasks and the results are still
    bit-identical to the sequential path."""
    classes = structures(FAST_CLASSES)
    sequential = make_engine(jobs=1, use_cache=True)
    seq_reports = [sequential.verify_class(cls) for cls in classes]

    remote = remote_engine([worker.address for worker in worker_pair])
    by_pid = {worker.pid: worker for worker in worker_pair}
    state = {"killed": None}
    original_run = RemoteWorkerPool.run

    def killing_run(self, items):
        count = 0
        for index, label, wall, result in original_run(self, items):
            count += 1
            if count == 2 and state["killed"] is None:
                # Kill the *other* worker -- the one that did not just
                # answer -- which still holds in-flight tasks (every
                # worker is filled to its batch window before the first
                # result can possibly arrive).
                answered_pid = int(str(label).rsplit("/", 1)[1])
                for pid, worker in by_pid.items():
                    if pid != answered_pid:
                        worker.kill()
                        state["killed"] = pid
                        break
            yield index, label, wall, result

    RemoteWorkerPool.run = killing_run
    try:
        suite_reports = remote.verify_suite(classes)
    finally:
        RemoteWorkerPool.run = original_run

    assert state["killed"] is not None, "the kill never fired"
    for seq_report, suite_report in zip(seq_reports, suite_reports):
        assert sequent_trace(seq_report) == sequent_trace(suite_report)
        assert aggregate_trace(seq_report) == aggregate_trace(suite_report)
    assert statistics_trace(sequential) == statistics_trace(remote)
    stats = remote.last_suite_stats
    # Every dispatched task is attributed to some worker even though one
    # died; the survivor carried the requeued share.
    assert sum(load.tasks for load in stats.workers) == stats.dispatched
    survivor_pid = next(pid for pid in by_pid if pid != state["killed"])
    survivor_loads = [
        load
        for load in stats.workers
        if str(load.pid).endswith(f"/{survivor_pid}")
    ]
    assert survivor_loads and survivor_loads[0].tasks > 0
    remote.close()


def test_pool_level_requeue_is_complete(worker_pair, secret_file):
    """Pool-level view of the kill: every task yields exactly one result."""
    engine = make_engine(jobs=1, use_cache=True)
    cls = structures(("Array List",))[0]
    tasks = []
    for method in cls.methods:
        for sequent in engine.method_sequents(cls, method):
            tasks.append(engine.task_for(sequent))
    items = list(enumerate(tasks))
    assert len(items) >= 10
    spec = PortfolioSpec.from_portfolio(engine.portfolio)
    pool = RemoteWorkerPool(
        spec,
        tuple(worker.address for worker in worker_pair),
        secret=SECRET,
        batch_size=3,
    )
    seen: dict[int, object] = {}
    killed = False
    try:
        for index, label, wall, result in pool.run(items):
            assert index not in seen
            seen[index] = result
            if not killed:
                killed = True
                answered_pid = int(str(label).rsplit("/", 1)[1])
                for worker in worker_pair:
                    if worker.pid != answered_pid:
                        worker.kill()
    finally:
        pool.close()
    assert set(seen) == set(range(len(items)))
    # Verdict parity against the in-parent prover phase.
    for index, task in items:
        local = engine.portfolio.run_provers(task)
        assert seen[index].proved == local.proved
        assert seen[index].winning_prover == local.winning_prover


def test_all_workers_dead_is_a_clean_error(secret_file):
    worker = WorkerProcess(secret_file)
    engine = make_engine(jobs=1, use_cache=True)
    cls = structures(("Array List",))[0]
    tasks = []
    for method in cls.methods:
        for sequent in engine.method_sequents(cls, method):
            tasks.append(engine.task_for(sequent))
    spec = PortfolioSpec.from_portfolio(engine.portfolio)
    pool = RemoteWorkerPool(spec, (worker.address,), secret=SECRET)
    with pytest.raises(RemoteWorkerError, match="unfinished"):
        try:
            for count, _ in enumerate(pool.run(list(enumerate(tasks)))):
                if count == 0:
                    worker.kill()
        finally:
            pool.close()
    worker.stop()


def test_wrong_secret_is_rejected(secret_file):
    worker = WorkerProcess(secret_file)
    try:
        spec = PortfolioSpec.from_portfolio(default_portfolio())
        pool = RemoteWorkerPool(spec, (worker.address,), secret=b"not-it")
        with pytest.raises(RemoteWorkerError, match="handshake"):
            pool.warm_up()
        pool.close()
        # The worker survives a rejected peer and still serves a good one.
        good = RemoteWorkerPool(spec, (worker.address,), secret=SECRET)
        good.warm_up()
        assert good.started
        good.close()
    finally:
        worker.stop()


def test_registry_registration_differential(secret_file, tmp_path):
    """The inbound direction: a worker registers with a coordinator-side
    registry (``worker --connect``) and the run is still bit-identical.

    Regression: the registry used to crash building its WorkerConnection,
    and ``warm_up`` used to block waiting for a registration -- both only
    visible on this path, not the dial path.
    """
    from repro.verifier.remote import WorkerRegistry

    registry = WorkerRegistry("127.0.0.1:0", SECRET)
    engine = VerificationEngine(
        default_portfolio().scaled(TIMEOUT_SCALE),
        worker_registry=registry,
        worker_secret=SECRET,
    )
    # warm_up must not block while no worker has registered yet.
    engine.keep_pool_warm = True
    engine.warm_pool()

    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[2] / "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.verifier.cli",
            "worker",
            "--connect",
            registry.address,
            "--secret-file",
            str(secret_file),
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    try:
        cls = structures(("Array List",))[0]
        sequential = make_engine(jobs=1, use_cache=True)
        seq_report = sequential.verify_class(cls)
        # Idle period before the first request: a registered worker must
        # wait indefinitely for work (regression: the dial-phase socket
        # timeout of 5s used to survive the handshake, so a worker whose
        # coordinator was idle died -- and exited 0 -- before this point).
        time.sleep(6.0)
        assert proc.poll() is None, "idle registered worker died"
        report = engine.verify_class(cls)
        assert sequent_trace(seq_report) == sequent_trace(report)
        assert aggregate_trace(seq_report) == aggregate_trace(report)
        stats = engine.last_parallel_stats
        assert stats.backend == "remote"
        assert sum(load.tasks for load in stats.workers) == stats.dispatched > 0
        assert str(stats.workers[0].pid).endswith(f"/{proc.pid}")
    finally:
        engine.close()
        registry.close()
        if proc.poll() is None:
            proc.terminate()
            proc.wait(timeout=10)
        proc.stdout.close()


def test_remote_warm_cache_dispatches_nothing(worker_pair):
    """A warm second run answers everything from the parent cache and
    never talks to the workers at all (parent-side cache authority)."""
    remote = remote_engine([worker.address for worker in worker_pair])
    cls = structures(("Cursor List",))[0]
    remote.verify_class(cls)
    first = remote.last_parallel_stats
    assert first.dispatched > 0
    remote.verify_class(cls)
    second = remote.last_parallel_stats
    assert second.dispatched == 0
    assert second.hits_memory == second.sequents_total
    assert second.workers == []
    remote.close()
