"""Admission control: bounded queue, priority lanes, rate limits, tenancy.

Exercises :mod:`repro.verifier.admission` directly (no sockets) plus the
tenant-namespace mechanics of :class:`repro.provers.cache.ProofCache`.
The daemon- and HTTP-level integration is covered by
``test_daemon_concurrent.py`` and ``test_http.py``.
"""

from __future__ import annotations

import json
import threading
import time

from repro.logic import builder as b
from repro.provers.cache import (
    CachedVerdict,
    ProofCache,
    fingerprint_from_json,
    fingerprint_to_json,
    task_fingerprint,
)
from repro.provers.result import ProofTask
from repro.verifier.admission import (
    PRIORITY_LANES,
    REJECTION_CODES,
    AdmissionController,
    TokenBucket,
    rejection_response,
)

_WAIT = 5.0


def _eventually(predicate, timeout=_WAIT):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.01)
    return predicate()


class TestAdmit:
    def test_fast_path_and_release(self):
        controller = AdmissionController(queue_limit=4)
        decision = controller.admit(client="a")
        assert decision.admitted
        assert controller.lock.locked()
        assert controller.snapshot()["busy"] is True
        controller.release()
        assert controller.snapshot()["busy"] is False
        assert controller.snapshot()["admitted"] == 1

    def test_nowait_busy_rejection_is_structured(self):
        controller = AdmissionController(queue_limit=4)
        assert controller.admit().admitted
        decision = controller.admit(nowait=True)
        assert not decision.admitted
        assert decision.code == "busy"
        response = rejection_response(decision)
        assert response["ok"] is False
        assert response["busy"] is True
        assert response["code"] == "busy"
        assert response["retry_after"] > 0
        assert "busy" in response["error"]
        controller.release()

    def test_queue_full_rejection(self):
        controller = AdmissionController(queue_limit=1)
        assert controller.admit().admitted
        granted = threading.Event()

        def waiter():
            controller.admit()
            granted.set()

        thread = threading.Thread(target=waiter, daemon=True)
        thread.start()
        assert _eventually(
            lambda: controller.snapshot()["queued"]["interactive"] == 1
        )
        # The queue is full: the next request is rejected immediately,
        # it does not block.
        decision = controller.admit()
        assert not decision.admitted
        assert decision.code == "queue_full"
        assert decision.retry_after > 0
        assert controller.snapshot()["rejected"]["queue_full"] == 1
        controller.release()
        assert granted.wait(_WAIT)
        controller.release()
        thread.join(_WAIT)

    def test_priority_lane_ordering_under_contention(self):
        controller = AdmissionController(queue_limit=8)
        assert controller.admit().admitted
        order: list[str] = []
        done: list[threading.Thread] = []

        def waiter(lane: str):
            controller.admit(priority=lane)
            order.append(lane)
            controller.release()

        # The batch request queues FIRST; the interactive one arrives
        # later and must still be served first.
        for lane in ("batch", "interactive"):
            thread = threading.Thread(target=waiter, args=(lane,), daemon=True)
            thread.start()
            done.append(thread)
            assert _eventually(
                lambda lane=lane: controller.snapshot()["queued"][lane] == 1
            )
        controller.release()
        for thread in done:
            thread.join(_WAIT)
        assert order == ["interactive", "batch"]

    def test_direct_lock_users_cannot_strand_the_queue(self):
        # Internal code (and older tests) grab the raw engine lock
        # without going through admit(); queued waiters must still make
        # progress once it is released.
        controller = AdmissionController(queue_limit=4)
        assert controller.lock.acquire(blocking=False)
        granted = threading.Event()

        def waiter():
            controller.admit()
            granted.set()
            controller.release()

        thread = threading.Thread(target=waiter, daemon=True)
        thread.start()
        assert _eventually(
            lambda: controller.snapshot()["queued"]["interactive"] == 1
        )
        controller.lock.release()  # raw release: no notify, poll must catch it
        assert granted.wait(_WAIT)
        thread.join(_WAIT)


class TestRateLimit:
    def test_refill_timing_with_fake_clock(self):
        clock = [0.0]
        controller = AdmissionController(
            queue_limit=4, rate=1.0, burst=2.0, clock=lambda: clock[0]
        )
        for _ in range(2):  # the burst allowance
            decision = controller.admit(client="alice")
            assert decision.admitted
            controller.release()
        decision = controller.admit(client="alice")
        assert not decision.admitted
        assert decision.code == "rate_limited"
        assert decision.retry_after == 1.0  # (1 - 0 tokens) / 1 per second
        # Other clients have their own buckets.
        other = controller.admit(client="bob")
        assert other.admitted
        controller.release()
        # Half a token refilled: still rejected, but sooner.
        clock[0] = 0.5
        decision = controller.admit(client="alice")
        assert decision.code == "rate_limited"
        assert abs(decision.retry_after - 0.5) < 1e-9
        clock[0] = 1.0
        assert controller.admit(client="alice").admitted
        controller.release()
        snapshot = controller.snapshot()
        assert snapshot["rejected"]["rate_limited"] == 2
        assert "alice" in snapshot["clients"]

    def test_token_bucket_caps_at_burst(self):
        clock = [0.0]
        bucket = TokenBucket(rate=10.0, burst=3.0, clock=lambda: clock[0])
        clock[0] = 100.0  # a long idle period must not bank > burst tokens
        for _ in range(3):
            assert bucket.take() == 0.0
        assert bucket.take() > 0.0


class TestRejectionShape:
    def test_codes_are_the_documented_set(self):
        assert set(REJECTION_CODES) == {"busy", "queue_full", "rate_limited"}
        assert PRIORITY_LANES == ("interactive", "batch")


def _task() -> ProofTask:
    return ProofTask(
        (("h", b.Lt(b.IntVar("x"), b.IntVar("y"))),),
        b.Lt(b.IntVar("x"), b.IntVar("y")),
    )


class TestTenantNamespaces:
    def test_isolation_between_tenants(self):
        cache = ProofCache()
        task = _task()
        verdict = CachedVerdict(proved=True, refuted=False, winning_prover="smt")
        cache.namespace = "alice"
        cache.store(cache.key(task), verdict)
        assert cache.lookup(cache.key(task)) is verdict
        # Neither another tenant nor the anonymous namespace sees it.
        cache.namespace = "bob"
        assert cache.lookup(cache.key(task)) is None
        cache.namespace = ""
        assert cache.lookup(cache.key(task)) is None

    def test_anonymous_namespace_is_the_legacy_key(self):
        cache = ProofCache()
        task = _task()
        assert cache.key(task) == task_fingerprint(task)

    def test_namespaced_key_round_trips_the_store_encoding(self):
        # Tenant keys must survive the persistent store's JSON encoding
        # exactly, or a warm restart would leak verdicts across tenants.
        cache = ProofCache()
        cache.namespace = "alice"
        key = cache.key(_task())
        encoded = json.loads(json.dumps(fingerprint_to_json(key)))
        assert fingerprint_from_json(encoded) == key

    def test_engine_bracketing(self):
        from repro.verifier.engine import VerificationEngine

        engine = VerificationEngine(use_proof_cache=True, persist=False)
        try:
            cache = engine.portfolio.proof_cache
            engine.set_cache_namespace("alice")
            assert cache.namespace == "alice"
            engine.set_cache_namespace("")
            assert cache.namespace == ""
        finally:
            engine.close()
