"""Incremental verification: the plan/execute split, the dependency
index, and dirty-sequent replanning.

The acceptance-critical differential: after a one-method edit, the
incremental run's verdicts are bit-identical to a cold full re-run of
the edited class, and the dirty/clean accounting matches the fingerprint
diff of the two plans exactly -- nothing more re-proves than the edit
invalidated, and nothing less.
"""

from __future__ import annotations

from repro.provers.dispatch import default_portfolio
from repro.suite.common import StructureBuilder
from repro.verifier.engine import VerificationEngine

TIMEOUT_SCALE = 0.4

BASE_ENSURES = "value = 0"
#: Still provable (reset ghost-assigns 0 into history), but a different
#: postcondition: the edit splits ``reset:Post`` and mints exactly one
#: fingerprint the base class never produced.
EDITED_ENSURES = "value = 0 & 0 in history"


def build_counter(reset_ensures: str = BASE_ENSURES):
    s = StructureBuilder("Counter")
    s.concrete("value", "int")
    s.concrete("limit", "int")
    s.ghost("history", "int set")
    s.invariant("InRange", "0 <= value & value <= limit")
    s.invariant("Recorded", "value in history")
    m = s.method(
        "increment",
        requires="value < limit",
        modifies="value, history",
        ensures="value = old value + 1 & old value in history",
    )
    m.assign("value", "value + 1")
    m.ghost_assign("history", "history Un {value}")
    m.done()
    m = s.method(
        "reset",
        requires="0 <= limit",
        modifies="value, history",
        ensures=reset_ensures,
    )
    m.assign("value", "0")
    m.ghost_assign("history", "history Un {0}")
    m.done()
    return s.build()


def make_engine(**kwargs) -> VerificationEngine:
    portfolio = default_portfolio().scaled(TIMEOUT_SCALE)
    return VerificationEngine(portfolio, **kwargs)


def verdicts(report):
    """The bit-comparable view: (method, label, proved, refuted, prover)."""
    return [
        (
            method.method_name,
            outcome.sequent.label,
            outcome.proved,
            outcome.dispatch.refuted,
            outcome.prover,
        )
        for method in report.methods
        for outcome in method.outcomes
    ]


# -- plan / execute split ---------------------------------------------------------


def test_plan_entries_and_execute_match_full_verify():
    engine = make_engine()
    plan = engine.plan_class_run(build_counter())
    assert {(entry.class_name, entry.method_name) for entry in plan.entries} == {
        ("Counter", "increment"),
        ("Counter", "reset"),
    }
    # Cold engine: every unique sequent is planned for dispatch.
    assert plan.dispatch_count == sum(1 for e in plan.entries if e.dispatch) > 0
    report, run_stats = engine.execute_class_plan(plan)
    assert run_stats.dispatched == plan.dispatch_count
    baseline = make_engine().verify_class(build_counter())
    assert verdicts(report) == verdicts(baseline)
    # Replanning on the warm engine answers everything from the cache.
    warm = engine.plan_class_run(build_counter())
    assert warm.dispatch_count == 0
    assert {entry.fingerprint for entry in warm.entries} == {
        entry.fingerprint for entry in plan.entries
    }


def test_strip_proofs_plan_does_not_overwrite_dependency_record():
    engine = make_engine()
    engine.verify_class(build_counter())
    record = engine.dependency_index.get("Counter")
    assert record is not None
    plan = engine.plan_class_run(build_counter(), strip_proofs=True)
    assert not plan.record_index
    engine.execute_class_plan(plan)
    # The ablation run must not poison the real program's record.
    assert engine.dependency_index.get("Counter") == record


# -- incremental runs -------------------------------------------------------------


def test_cold_incremental_matches_full_run():
    engine = make_engine()
    report, stats = engine.verify_class_incremental(build_counter())
    assert stats.cold_start
    assert stats.sequents_clean == 0 and stats.methods_skipped == 0
    baseline = make_engine().verify_class(build_counter())
    assert verdicts(report) == verdicts(baseline)


def test_unchanged_class_resolves_fully_clean():
    engine = make_engine()
    full = engine.verify_class(build_counter())
    report, stats = engine.verify_class_incremental(build_counter())
    assert not stats.cold_start
    assert stats.dispatched == 0
    assert stats.sequents_dirty == 0 and not stats.dirty_labels
    assert stats.methods_skipped == stats.methods_total == 2
    assert stats.sequents_clean == stats.sequents_total == full.sequents_total
    assert verdicts(report) == verdicts(full)


def test_one_method_edit_reproves_exactly_the_fingerprint_diff():
    engine = make_engine()
    engine.verify_class(build_counter())
    edited = build_counter(EDITED_ENSURES)
    report, stats = engine.verify_class_incremental(edited)

    # Differential: bit-identical to a cold full run of the edited class.
    baseline = make_engine().verify_class(edited)
    assert verdicts(report) == verdicts(baseline)
    assert report.verified

    # The dirty set is exactly the plan-level fingerprint diff.
    base_fps = {
        entry.fingerprint
        for entry in make_engine().plan_class_run(build_counter()).entries
    }
    edited_entries = make_engine().plan_class_run(edited).entries
    dirty_fps = {e.fingerprint for e in edited_entries} - base_fps
    assert stats.sequents_dirty == len(dirty_fps) == 1
    assert stats.dispatched == len(dirty_fps)
    assert stats.dirty_labels == ["reset:Post.2"]
    assert stats.sequents_clean == stats.sequents_total - stats.sequents_dirty
    # The untouched method never regenerated its sequents.
    assert stats.methods_skipped == 1


def test_dependency_index_persists_across_engines(tmp_path):
    with make_engine(cache_dir=tmp_path) as first:
        first.verify_class(build_counter())
    with make_engine(cache_dir=tmp_path) as second:
        report, stats = second.verify_class_incremental(build_counter())
        assert not stats.cold_start
        assert stats.dispatched == 0
        assert stats.sequents_clean == stats.sequents_total
        assert report.verified
        # Clean resolutions are accounted as (disk-loaded) cache hits.
        counters = second.portfolio.statistics
        assert counters.cache_hits == stats.sequents_clean
        assert counters.cache_hits_disk == stats.sequents_clean
    with make_engine(cache_dir=tmp_path) as third:
        _, stats = third.verify_class_incremental(build_counter(EDITED_ENSURES))
        assert not stats.cold_start
        assert stats.dispatched == 1
        assert stats.dirty_labels == ["reset:Post.2"]


def test_suite_run_seeds_the_incremental_index():
    engine = make_engine()
    engine.verify_suite([build_counter()], jobs=1)
    _, stats = engine.verify_class_incremental(build_counter())
    assert not stats.cold_start
    assert stats.dispatched == 0
    assert stats.sequents_clean == stats.sequents_total
