"""Unit tests for the measured cost model and its data structures.

The fallback chain (measured -> profile -> static -> default), the
dedup rules that keep class profiles from double-counting sequents, and
the latency histogram that feeds the daemon's ``metrics`` op.
"""

from __future__ import annotations

import json

from repro.provers.cache import CachedVerdict, PersistentCacheStore
from repro.suite.catalog import CLASS_COST_HINTS, DEFAULT_COST_HINT
from repro.verifier.costmodel import (
    HINT_DEFAULT,
    HINT_MEASURED,
    HINT_PROFILE,
    HINT_STATIC,
    ClassCostProfile,
    CostModel,
)
from repro.verifier.stats import LATENCY_BUCKETS, LatencyHistogram

KEY_A = (("i", 1),)
KEY_B = (("i", 2),)
KEY_C = (("i", 3),)


class TestFallbackChain:
    def test_default_for_totally_unknown_class(self):
        model = CostModel()
        cost, source = model.class_cost("No Such Structure")
        assert (cost, source) == (DEFAULT_COST_HINT, HINT_DEFAULT)

    def test_static_for_catalogue_class_without_measurements(self):
        model = CostModel()
        cost, source = model.class_cost("Hash Table", keys=[KEY_A, None])
        assert (cost, source) == (CLASS_COST_HINTS["Hash Table"], HINT_STATIC)

    def test_profile_beats_static(self):
        model = CostModel()
        model.ingest_profiles(
            {"Hash Table": {"wall": 99.0, "cpu": 80.0, "sequents": 10}}
        )
        cost, source = model.class_cost("Hash Table")
        assert (cost, source) == (99.0, HINT_PROFILE)

    def test_measured_sequents_beat_everything(self):
        model = CostModel()
        model.ingest_profiles(
            {"Hash Table": {"wall": 99.0, "cpu": 80.0, "sequents": 10}}
        )
        model.observe("Hash Table", KEY_A, wall=2.0, cpu=1.9)
        cost, source = model.class_cost("Hash Table", keys=[KEY_A])
        assert source == HINT_MEASURED
        assert cost == 2.0

    def test_unmeasured_stragglers_estimated_at_measured_mean(self):
        model = CostModel()
        model.observe("X", KEY_A, wall=1.0, cpu=1.0)
        model.observe("X", KEY_B, wall=3.0, cpu=3.0)
        # Two measured (sum 4, mean 2) plus two unknown -> 4 + 2*2.
        cost, source = model.class_cost("X", keys=[KEY_A, KEY_B, KEY_C, None])
        assert source == HINT_MEASURED
        assert cost == 8.0

    def test_keys_without_any_coverage_fall_through(self):
        model = CostModel()
        model.observe("X", KEY_A, wall=1.0, cpu=1.0)
        cost, source = model.class_cost("Y", keys=[KEY_B, KEY_C])
        assert source == HINT_DEFAULT


class TestObservation:
    def test_observe_accumulates_distinct_sequents(self):
        model = CostModel()
        model.observe("X", KEY_A, wall=1.0, cpu=0.9)
        model.observe("X", KEY_B, wall=2.0, cpu=1.8)
        profile = model.profiles["X"]
        assert profile.sequents == 2
        assert profile.wall == 3.0
        assert profile.cpu == 2.7

    def test_reobserving_a_key_refreshes_timing_not_profile(self):
        model = CostModel()
        model.observe("X", KEY_A, wall=1.0, cpu=1.0)
        model.observe("X", KEY_A, wall=5.0, cpu=5.0)
        assert model.sequent_cost(KEY_A) == 5.0
        assert model.profiles["X"].sequents == 1
        assert model.profiles["X"].wall == 1.0

    def test_disk_keys_never_double_count_into_profiles(self):
        # The persisted profile already contains the disk keys' cost; a
        # re-dispatch of one of them (e.g. after eviction from the
        # verdict cache) must not inflate the profile.
        model = CostModel()
        model.ingest_entries(
            {KEY_A: CachedVerdict(True, False, "smt", wall=1.5, cpu=1.4)}
        )
        model.ingest_profiles({"X": {"wall": 1.5, "cpu": 1.4, "sequents": 1}})
        model.observe("X", KEY_A, wall=1.7, cpu=1.6)
        assert model.profiles["X"].sequents == 1
        assert model.sequent_cost(KEY_A) == 1.7

    def test_unmeasured_entries_are_skipped_on_ingest(self):
        model = CostModel()
        model.ingest_entries(
            {
                KEY_A: CachedVerdict(True, False, "smt", wall=0.0, cpu=0.0),
                KEY_B: CachedVerdict(True, False, "smt", wall=0.25, cpu=0.2),
            }
        )
        assert model.sequent_cost(KEY_A) is None
        assert model.sequent_cost(KEY_B) == 0.25

    def test_keyless_observation_still_feeds_the_profile(self):
        model = CostModel()
        model.observe("X", None, wall=1.0, cpu=1.0)
        model.observe("X", None, wall=1.0, cpu=1.0)
        assert model.profiles["X"].sequents == 2
        assert model.class_cost("X")[1] == HINT_PROFILE

    def test_zero_wall_observations_are_ignored(self):
        model = CostModel()
        model.observe("X", KEY_A, wall=0.0, cpu=0.0)
        assert "X" not in model.profiles
        assert model.sequent_cost(KEY_A) is None

    def test_reprofile_replaces_stale_accumulation(self):
        # A class whose sequents changed: the old profile counted keys
        # that no longer exist; reprofile rebuilds from the current set.
        model = CostModel()
        model.ingest_profiles({"X": {"wall": 50.0, "cpu": 45.0, "sequents": 9}})
        model.observe("X", KEY_A, wall=1.0, cpu=0.9)
        model.observe("X", KEY_B, wall=2.0, cpu=1.8)
        model.reprofile("X", [KEY_A, KEY_B])
        profile = model.profiles["X"]
        assert (profile.wall, profile.cpu, profile.sequents) == (3.0, 2.7, 2)
        # Idempotent: re-running over the same ground truth is a no-op.
        before = model.mutations
        model.reprofile("X", [KEY_A, KEY_B])
        assert model.mutations == before

    def test_reprofile_without_measured_keys_keeps_existing_profile(self):
        model = CostModel()
        model.observe("X", None, wall=1.0, cpu=1.0)
        model.reprofile("X", [KEY_A, None])
        assert model.profiles["X"].wall == 1.0


class TestSnapshots:
    def test_profiles_snapshot_round_trips_through_store(self, tmp_path):
        model = CostModel()
        model.observe("X", KEY_A, wall=1.25, cpu=1.0)
        store = PersistentCacheStore(tmp_path, "k")
        store.save({}, profiles=model.profiles_snapshot())
        store.load()
        other = CostModel()
        other.ingest_profiles(store.last_profiles)
        assert other.profiles["X"].wall == 1.25
        assert other.profiles["X"].sequents == 1

    def test_as_dict_is_json_ready(self):
        model = CostModel()
        model.observe("X", KEY_A, wall=1.0, cpu=0.5)
        payload = json.loads(json.dumps(model.as_dict()))
        assert payload["sequent_timings"] == 1
        assert payload["classes"]["X"]["mean_wall"] == 1.0

    def test_mean_wall(self):
        profile = ClassCostProfile()
        assert profile.mean_wall == 0.0
        profile.add(1.0, 0.5)
        profile.add(3.0, 2.5)
        assert profile.mean_wall == 2.0


class TestLatencyHistogram:
    def test_bands_and_summary(self):
        histogram = LatencyHistogram()
        histogram.add(0.005)   # first band
        histogram.add(0.05)    # <= 0.1
        histogram.add(2.0)     # <= 3
        histogram.add(1000.0)  # overflow
        payload = histogram.as_dict()
        assert payload["count"] == 4
        assert payload["max"] == 1000.0
        assert payload["buckets"][-1] == ["inf", 1]
        by_bound = dict(tuple(pair) for pair in payload["buckets"][:-1])
        assert by_bound[0.01] == 1
        assert by_bound[0.1] == 1
        assert by_bound[3.0] == 1
        assert sum(count for _, count in payload["buckets"]) == 4

    def test_mean_tracks_total(self):
        histogram = LatencyHistogram()
        for value in (1.0, 2.0, 3.0):
            histogram.add(value)
        assert histogram.mean == 2.0

    def test_bucket_bounds_are_sorted(self):
        assert list(LATENCY_BUCKETS) == sorted(LATENCY_BUCKETS)
