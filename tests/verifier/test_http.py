"""HTTP front door, end to end against a live daemon.

One daemon fixture serves a real :class:`VerifierDaemon` with the HTTP
listener enabled; the tests drive it through :class:`HttpApiClient`
exactly like an external caller would: authentication failures, routing
errors, verify round-trips (bit-identical to a direct ``handle`` call),
structured 429 rejections with a ``Retry-After`` header, and tenant
identity flowing from the signed ``X-Jahob-Client`` header into the
admission snapshot.
"""

from __future__ import annotations

import re
import threading

import pytest

from repro.verifier.daemon import PROTOCOL_VERSION, VerifierDaemon
from repro.verifier.http import (
    ROUTES,
    HttpApiClient,
    HttpApiError,
    sign_request,
)

TIMEOUT_SCALE = 0.4
SECRET = b"http-front-door-test-secret"


@pytest.fixture(scope="module")
def served(tmp_path_factory):
    tmp_path = tmp_path_factory.mktemp("http-door")
    daemon = VerifierDaemon(
        tmp_path / "jahob.sock",
        http="127.0.0.1:0",
        cache_dir=tmp_path / "cache",
        timeout_scale=TIMEOUT_SCALE,
        secret=SECRET,
        queue_limit=4,
    )
    thread = threading.Thread(target=daemon.serve_forever, daemon=True)
    thread.start()
    client = HttpApiClient(_wait_address(daemon), SECRET, client_id="pytest")
    client.wait_ready()
    yield daemon, client
    daemon.stop()
    thread.join(timeout=10.0)


def _wait_address(daemon: VerifierDaemon) -> str:
    # serve_forever binds on its thread; poll until :0 is resolved.
    import time

    deadline = time.monotonic() + 5.0
    while time.monotonic() < deadline:
        door = daemon.http_door
        if door is not None and not door.address.endswith(":0"):
            return door.address
        time.sleep(0.02)
    raise AssertionError("HTTP door never bound")


class TestRoutingAndAuth:
    def test_ping_round_trip(self, served):
        _, client = served
        status, response = client.request("GET", "/v1/ping")
        assert status == 200
        assert response["ok"]
        assert response["protocol"] == PROTOCOL_VERSION

    def test_structures_lists_the_catalogue(self, served):
        _, client = served
        status, response = client.request("GET", "/v1/structures")
        assert status == 200
        assert "Linked List" in response["structures"]

    def test_wrong_secret_is_401_for_every_route(self, served):
        daemon, client = served
        impostor = HttpApiClient(
            f"{client.host}:{client.port}", b"wrong-secret", client_id="pytest"
        )
        for route in ROUTES:
            status, response = impostor.request(route.method, route.path)
            assert status == 401, route.path
            assert response["ok"] is False
            assert "signature" in response["error"]

    def test_tampered_client_id_breaks_the_signature(self, served):
        # The signature covers the client id: signing as one identity and
        # claiming another must 401 (identity is what keys rate limits
        # and tenant namespaces).
        import http.client as hc

        daemon, client = served
        body = b""
        headers = {
            "X-Jahob-Client": "mallory",
            "X-Jahob-Signature": sign_request(
                SECRET, "alice", "GET", "/v1/ping", body
            ),
        }
        connection = hc.HTTPConnection(client.host, client.port, timeout=10.0)
        try:
            connection.request("GET", "/v1/ping", body=body, headers=headers)
            assert connection.getresponse().status == 401
        finally:
            connection.close()

    def test_unknown_path_is_404(self, served):
        _, client = served
        status, response = client.request("GET", "/v2/ping")
        assert status == 404
        assert response["ok"] is False

    def test_wrong_method_is_405(self, served):
        _, client = served
        status, response = client.request("POST", "/v1/ping")
        assert status == 405
        assert "GET" in response["error"]

    def test_malformed_json_body_is_400(self, served):
        import http.client as hc

        _, client = served
        body = b"{not json"
        headers = {
            "X-Jahob-Client": "pytest",
            "X-Jahob-Signature": sign_request(
                SECRET, "pytest", "POST", "/v1/verify", body
            ),
        }
        connection = hc.HTTPConnection(client.host, client.port, timeout=10.0)
        try:
            connection.request("POST", "/v1/verify", body=body, headers=headers)
            raw = connection.getresponse()
            assert raw.status == 400
            raw.read()
        finally:
            connection.close()

    def test_socket_only_ops_are_not_routed(self, served):
        _, client = served
        for path in ("/v1/table1", "/v1/shutdown"):
            status, _ = client.request("POST", path)
            assert status == 404


class TestVerifyOverHttp:
    def test_verify_matches_direct_handle(self, served):
        daemon, client = served
        status, over_http = client.request(
            "POST", "/v1/verify", {"name": "Linked List"}
        )
        assert status == 200
        assert over_http["ok"]
        assert over_http["exit"] == 0
        direct = daemon.handle({"op": "verify", "name": "Linked List"})
        # Identical verdict and rendering across transports, up to the
        # wall-clock timings embedded in the output text (the two runs
        # are separate verifications in separate tenant namespaces).
        assert over_http["exit"] == direct["exit"]
        http_report = dict(over_http["report"], elapsed=None)
        assert http_report == dict(direct["report"], elapsed=None)
        normalize = re.compile(r"\d+\.\d+s").sub
        assert normalize("_s", over_http["output"]) == normalize(
            "_s", direct["output"]
        )

    def test_verification_failure_is_still_http_200(self, served):
        _, client = served
        status, response = client.request(
            "POST", "/v1/verify", {"name": "No Such Structure"}
        )
        assert status == 200
        assert response["ok"] is False
        assert "busy" not in response

    def test_metrics_shows_the_admission_snapshot(self, served):
        _, client = served
        status, response = client.request("GET", "/v1/metrics")
        assert status == 200
        admission = response["admission"]
        assert admission["queue_limit"] == 4
        assert admission["admitted"] >= 1
        # The signed identity shows up as the rate-limit/tenant key.
        assert set(admission["queued"]) == {"interactive", "batch"}


class TestBackpressure:
    def test_nowait_while_busy_is_structured_429(self, served):
        daemon, client = served
        assert daemon.admission.lock.acquire(timeout=5.0)
        try:
            status, response = client.request(
                "POST", "/v1/verify", {"name": "Linked List", "nowait": True}
            )
        finally:
            daemon.admission.lock.release()
        assert status == 429
        assert response["ok"] is False
        assert response["busy"] is True
        assert response["code"] == "busy"
        assert response["retry_after"] > 0

    def test_retry_after_header_is_integer_seconds(self, served):
        import http.client as hc

        daemon, client = served
        body = b'{"name":"Linked List","nowait":true}'
        headers = {
            "X-Jahob-Client": "pytest",
            "X-Jahob-Signature": sign_request(
                SECRET, "pytest", "POST", "/v1/verify", body
            ),
            "Content-Type": "application/json",
        }
        assert daemon.admission.lock.acquire(timeout=5.0)
        try:
            connection = hc.HTTPConnection(client.host, client.port, timeout=10.0)
            try:
                connection.request("POST", "/v1/verify", body=body, headers=headers)
                raw = connection.getresponse()
                assert raw.status == 429
                retry_after = raw.getheader("Retry-After")
                raw.read()
            finally:
                connection.close()
        finally:
            daemon.admission.lock.release()
        assert retry_after is not None
        assert int(retry_after) >= 1

    def test_lockfree_ops_answer_while_engine_is_held(self, served):
        daemon, client = served
        assert daemon.admission.lock.acquire(timeout=5.0)
        try:
            for path in ("/v1/ping", "/v1/stats", "/v1/metrics"):
                status, response = client.request("GET", path)
                assert status == 200, path
                assert response["ok"]
        finally:
            daemon.admission.lock.release()


class TestClientPlumbing:
    def test_transport_failure_raises_api_error(self):
        client = HttpApiClient("127.0.0.1:1", SECRET, timeout=0.5)
        with pytest.raises(HttpApiError):
            client.request("GET", "/v1/ping")

    def test_rejects_non_tcp_addresses(self, tmp_path):
        with pytest.raises(HttpApiError):
            HttpApiClient(str(tmp_path / "door.sock"), SECRET)
