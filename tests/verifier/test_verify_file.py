"""File ingestion end to end: loader, CLI ``verify FILE``, daemon op.

The loader unit tests pin the export conventions (MODEL / MODELS /
module-level ClassModels / zero-arg ``build*`` functions) and the error
cases; the integration tests drive the same file through the local CLI,
the daemon's ``verify_file`` op over a real unix socket, and the CLI's
``--connect`` routing -- asserting the three print identical reports.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.frontend.loader import ProgramLoadError, load_class_models
from repro.verifier.cli import main as cli_main
from repro.verifier.daemon import DaemonClient, DaemonError, VerifierDaemon

TIMEOUT_SCALE = 0.4

GOOD_PROGRAM = '''
from repro.suite.common import StructureBuilder


def build_toggle():
    s = StructureBuilder("Toggle")
    s.concrete("on", "int")
    s.invariant("Bit", "0 <= on & on <= 1")
    m = s.method("flip", modifies="on", ensures="on = 1 - old on")
    m.assign("on", "1 - on")
    m.done()
    return s.build()
'''

FAILING_PROGRAM = '''
from repro.suite.common import StructureBuilder


def build_broken():
    s = StructureBuilder("Broken")
    s.concrete("n", "int")
    m = s.method("bad", modifies="n", ensures="n = old n + 1")
    m.assign("n", "n + 2")
    m.done()
    return s.build()
'''


@pytest.fixture()
def program(tmp_path):
    path = tmp_path / "toggle.py"
    path.write_text(GOOD_PROGRAM)
    return path


# -- loader conventions -----------------------------------------------------------


def test_loader_discovers_build_functions(program):
    (model,) = load_class_models(program)
    assert model.name == "Toggle"
    assert [m.name for m in model.methods] == ["flip"]


def test_loader_prefers_explicit_model(tmp_path):
    path = tmp_path / "explicit.py"
    path.write_text(
        GOOD_PROGRAM
        + "\nMODEL = build_toggle()\n"
        + "def build_decoy():\n    raise RuntimeError('must not be called')\n"
    )
    (model,) = load_class_models(path)
    assert model.name == "Toggle"


def test_loader_models_list_and_module_level_instances(tmp_path):
    path = tmp_path / "many.py"
    path.write_text(GOOD_PROGRAM + "\nfirst = build_toggle()" + "\nMODELS = [first]\n")
    (model,) = load_class_models(path)
    assert model.name == "Toggle"

    bare = tmp_path / "bare.py"
    bare.write_text(GOOD_PROGRAM + "\ninstance = build_toggle()\n")
    # Both the bound instance and the builder are found; dedup by class
    # name keeps one.
    (model,) = load_class_models(bare)
    assert model.name == "Toggle"


def test_loader_skips_builders_with_required_arguments(tmp_path):
    path = tmp_path / "parametric.py"
    path.write_text(GOOD_PROGRAM.replace("def build_toggle():", "def build_toggle(n):"))
    with pytest.raises(ProgramLoadError, match="exports no class models"):
        load_class_models(path)


def test_loader_repeated_loads_pick_up_edits(tmp_path):
    """Watch mode re-ingests a file on every save: repeated loads must see
    the edited content and leave no module residue behind."""
    import sys

    path = tmp_path / "prog.py"
    path.write_text(GOOD_PROGRAM)
    (first,) = load_class_models(path)
    path.write_text(GOOD_PROGRAM.replace('"flip"', '"flop"'))
    (second,) = load_class_models(path)
    assert [m.name for m in first.methods] == ["flip"]
    assert [m.name for m in second.methods] == ["flop"]
    # The first load's model is untouched by the second load.
    assert first.methods[0].name == "flip"
    assert not any(name.startswith("_jahob_program_") for name in sys.modules)


def test_loader_same_path_loads_get_distinct_module_names(tmp_path):
    """Two loads of one path never collide in ``sys.modules`` (daemon
    request threads can ingest the same file concurrently)."""
    path = tmp_path / "prog.py"
    path.write_text(GOOD_PROGRAM + "\nimport sys\nMODULE_NAME = __name__\n")
    (a,) = load_class_models(path)
    (b,) = load_class_models(path)
    assert a.name == b.name == "Toggle"
    from repro.frontend.loader import _import_file

    first = _import_file(path)
    second = _import_file(path)
    assert first.MODULE_NAME != second.MODULE_NAME


def test_loader_error_cases(tmp_path):
    with pytest.raises(ProgramLoadError, match="no such file"):
        load_class_models(tmp_path / "missing.py")
    crashing = tmp_path / "crash.py"
    crashing.write_text("raise RuntimeError('boom')\n")
    with pytest.raises(ProgramLoadError, match="boom"):
        load_class_models(crashing)
    wrong = tmp_path / "wrong.py"
    wrong.write_text("MODEL = 42\n")
    with pytest.raises(ProgramLoadError, match="MODEL must be a ClassModel"):
        load_class_models(wrong)


# -- CLI --------------------------------------------------------------------------


def run_cli(args, capsys):
    code = cli_main(["--timeout-scale", str(TIMEOUT_SCALE), *args])
    captured = capsys.readouterr()
    return code, captured.out, captured.err


def test_cli_verify_file_local(program, capsys):
    code, out, _ = run_cli(["verify", str(program)], capsys)
    assert code == 0
    assert "Toggle.flip" in out
    assert out.splitlines()[-1].endswith("1/1 class models verified")


def test_cli_verify_file_failure_exit_code(tmp_path, capsys):
    path = tmp_path / "broken.py"
    path.write_text(FAILING_PROGRAM)
    code, out, _ = run_cli(["verify", str(path)], capsys)
    assert code == 1
    assert "FAILED" in out
    assert out.splitlines()[-1].endswith("0/1 class models verified")


def test_cli_verify_file_load_error(tmp_path, capsys):
    code, _, err = run_cli(["verify", str(tmp_path / "missing.py")], capsys)
    assert code == 2
    assert "no such file" in err


def test_cli_catalogue_names_still_resolve(capsys):
    code, out, _ = run_cli(["verify", "Cursor List"], capsys)
    assert code == 0
    assert out.splitlines()[-1].startswith("total:")


# -- daemon -----------------------------------------------------------------------


@pytest.fixture()
def daemon(tmp_path):
    instance = VerifierDaemon(
        tmp_path / "jahob.sock", jobs=1, timeout_scale=TIMEOUT_SCALE
    )
    thread = threading.Thread(target=instance.serve_forever, daemon=True)
    thread.start()
    client = DaemonClient(instance.socket_path)
    deadline = time.monotonic() + 5.0
    while True:
        try:
            client.ping()
            break
        except DaemonError:
            if time.monotonic() > deadline:
                raise
            time.sleep(0.02)
    yield instance, client
    if thread.is_alive():
        instance.stop()
        thread.join(timeout=10.0)
    instance.close()


def test_daemon_verify_file_over_socket(daemon, program, capsys):
    instance, client = daemon
    response = client.request({"op": "verify_file", "path": str(program)})
    assert response["ok"] and response["exit"] == 0
    (payload,) = response["reports"]
    assert payload["class"] == "Toggle" and payload["verified"]
    assert response["output"].splitlines()[-1].endswith("1/1 class models verified")

    missing = client.request(
        {"op": "verify_file", "path": str(program.parent / "gone.py")}
    )
    assert not missing["ok"] and "no such file" in missing["error"]
    badreq = client.request({"op": "verify_file"})
    assert not badreq["ok"] and "'path'" in badreq["error"]

    # --connect routes verify FILE to the daemon and prints its output;
    # a local run of the same file prints the identical report.
    code = cli_main(["--connect", str(instance.socket_path), "verify", str(program)])
    connected_out = capsys.readouterr().out
    assert code == 0
    code = cli_main(["--timeout-scale", str(TIMEOUT_SCALE), "verify", str(program)])
    local_out = capsys.readouterr().out
    assert code == 0
    assert connected_out == local_out
