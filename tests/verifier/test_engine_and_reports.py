"""The verification engine, reports and table generation."""

from repro.suite.common import StructureBuilder
from repro.verifier import (
    VerificationEngine,
    format_table1,
    format_table2,
    table1_rows,
)
from repro.verifier.report import Table2Row, format_table


def build_toy():
    s = StructureBuilder("Toy")
    s.concrete("value", "int")
    s.invariant("NonNegative", "0 <= value")
    m = s.method(
        "bump",
        requires="value < 100",
        modifies="value",
        ensures="value = old value + 1",
    )
    m.assign("value", "value + 1")
    m.done()
    m = s.method(
        "broken",
        modifies="value",
        ensures="value = old value + 1",
    )
    m.assign("value", "value - 1")  # does not satisfy its contract
    m.done()
    return s.build()


class TestEngine:
    def test_method_report_contents(self):
        toy = build_toy()
        engine = VerificationEngine()
        report = engine.verify_method(toy, toy.method("bump"))
        assert report.verified
        assert report.sequents_total == report.sequents_proved > 0
        assert all(outcome.prover for outcome in report.outcomes)

    def test_incorrect_method_fails(self):
        toy = build_toy()
        engine = VerificationEngine()
        report = engine.verify_method(toy, toy.method("broken"))
        assert not report.verified
        assert report.failed_sequents

    def test_class_report_aggregation(self):
        toy = build_toy()
        engine = VerificationEngine()
        report = engine.verify_class(toy)
        assert report.methods_total == 2
        assert report.methods_verified == 1
        assert not report.verified
        assert report.sequents_total == sum(m.sequents_total for m in report.methods)
        assert report.elapsed > 0


class TestReports:
    def test_table1_rows_without_engine(self):
        rows = table1_rows([build_toy()], engine=None)
        assert len(rows) == 1
        assert rows[0].methods == 2
        text = format_table1(rows)
        assert "Toy" in text and "note" in text.lower()

    def test_table2_formatting(self):
        row = Table2Row(
            class_name="Toy",
            methods_without=1,
            methods_total=2,
            sequents_without=5,
            sequents_total_without=8,
            methods_with=2,
            sequents_with=8,
            sequents_total_with=8,
        )
        text = format_table2([row])
        assert "1 of 2" in text and "5 of 8" in text

    def test_generic_table_alignment(self):
        text = format_table(["a", "bb"], [["1", "2"], ["333", "4"]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert len(set(len(line) for line in lines)) <= 2


class TestCli:
    def test_cli_list(self, capsys):
        from repro.verifier.cli import main

        assert main(["list"]) == 0
        output = capsys.readouterr().out
        assert "Linked List" in output and "Hash Table" in output
