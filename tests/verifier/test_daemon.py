"""Daemon lifecycle: start, warm requests, cache-hit provenance, shutdown.

The daemon runs in a background thread over a real unix socket in a tmp
directory; the client is the same :class:`DaemonClient` the CLI's
``--connect`` flag uses.  Wall-clock assertions are limited to the one
acceptance ratio (warm >= 5x cold) with a huge measured margin (~30x on
the 1-CPU reference container); everything else asserts verdicts and
provenance, which are deterministic.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.provers.dispatch import default_portfolio
from repro.verifier.daemon import (
    PROTOCOL_VERSION,
    DaemonClient,
    DaemonError,
    VerifierDaemon,
)
from repro.verifier.engine import VerificationEngine

TIMEOUT_SCALE = 0.4


@pytest.fixture()
def daemon(tmp_path):
    """A serving daemon (background thread) plus a connected client."""
    instance = VerifierDaemon(
        tmp_path / "jahob.sock",
        jobs=1,
        cache_dir=tmp_path / "cache",
        timeout_scale=TIMEOUT_SCALE,
    )
    thread = threading.Thread(target=instance.serve_forever, daemon=True)
    thread.start()
    deadline = time.monotonic() + 5.0
    client = DaemonClient(instance.socket_path)
    while True:
        try:
            client.ping()
            break
        except DaemonError:
            if time.monotonic() > deadline:
                raise
            time.sleep(0.02)
    yield instance, client, thread
    if thread.is_alive():
        instance.stop()
        thread.join(timeout=10.0)
    instance.close()


def outcomes_of(report_payload):
    return [
        outcome
        for method in report_payload["methods"]
        for outcome in method["outcomes"]
    ]


def test_ping_and_list(daemon):
    _, client, _ = daemon
    pong = client.ping()
    assert pong["ok"] and pong["protocol"] == PROTOCOL_VERSION
    names = client.request({"op": "list"})["structures"]
    assert "Linked List" in names and len(names) == 8


def test_two_warm_requests_and_provenance(daemon):
    """Cold request runs provers; the second is served from warm memory."""
    _, client, _ = daemon
    start = time.monotonic()
    cold = client.request({"op": "verify", "name": "Array List"})
    cold_elapsed = time.monotonic() - start
    assert cold["ok"] and cold["exit"] == 0
    assert cold["report"]["verified"]
    assert any(not outcome["cached"] for outcome in outcomes_of(cold["report"]))

    start = time.monotonic()
    warm = client.request({"op": "verify", "name": "Array List"})
    warm_elapsed = time.monotonic() - start
    assert warm["ok"] and warm["exit"] == 0
    warm_outcomes = outcomes_of(warm["report"])
    assert warm_outcomes and all(outcome["cached"] for outcome in warm_outcomes)
    assert {outcome["origin"] for outcome in warm_outcomes} == {"memory"}
    # Verdicts and attribution are identical cold vs warm.
    assert [
        (outcome["label"], outcome["proved"], outcome["prover"])
        for outcome in outcomes_of(cold["report"])
    ] == [
        (outcome["label"], outcome["proved"], outcome["prover"])
        for outcome in warm_outcomes
    ]
    # The daemon's output is the same format_verify text a local run prints.
    assert warm["output"].splitlines()[-1].startswith("total:")
    assert "Array List." in warm["output"]
    # Acceptance: warm serving is >= 5x faster than the daemon's own cold
    # start (measured ~30x; the margin absorbs load jitter).
    assert warm_elapsed * 5 <= cold_elapsed, (cold_elapsed, warm_elapsed)

    stats = client.request({"op": "stats"})
    assert stats["ok"]
    assert stats["counters"]["proof_cache_hits_memory"] >= len(warm_outcomes)


def test_warm_restart_serves_from_disk(tmp_path):
    """A new daemon over the same cache dir answers from disk hits."""
    engine_args = dict(
        jobs=1, cache_dir=tmp_path / "cache", timeout_scale=TIMEOUT_SCALE
    )
    first = VerifierDaemon(tmp_path / "a.sock", **engine_args)
    response = first.handle({"op": "verify", "name": "Cursor List"})
    assert response["ok"]
    flushed = first.handle({"op": "shutdown"})
    assert flushed["ok"]
    first.close()

    second = VerifierDaemon(tmp_path / "b.sock", **engine_args)
    try:
        warm = second.handle({"op": "verify", "name": "Cursor List"})
        assert warm["ok"]
        outcomes = outcomes_of(warm["report"])
        assert outcomes and all(outcome["cached"] for outcome in outcomes)
        assert {outcome["origin"] for outcome in outcomes} == {"disk"}
    finally:
        second.close()


def test_suite_op_runs_scheduler(daemon):
    _, client, _ = daemon
    response = client.request({"op": "suite", "names": ["Array List", "Cursor List"]})
    assert response["ok"]
    assert [payload["class"] for payload in response["reports"]] == [
        "Array List",
        "Cursor List",
    ]
    assert "Suite schedule" in response["output"]


def test_unknown_op_and_bad_request(daemon):
    _, client, _ = daemon
    response = client.request({"op": "frobnicate"})
    assert not response["ok"] and "unknown op" in response["error"]
    response = client.request({"op": "verify"})
    assert not response["ok"]
    response = client.request({"op": "verify", "name": "No Such Structure"})
    assert not response["ok"] and "KeyError" in response["error"]
    # An oversized request still gets a response (not a bare hang-up).
    response = client.request({"op": "verify", "name": "x" * (1 << 20)})
    assert not response["ok"] and "too large" in response["error"]
    # The daemon survived all of that.
    assert client.ping()["ok"]


def test_clean_shutdown_flushes_and_unlinks(daemon):
    instance, client, thread = daemon
    client.request({"op": "verify", "name": "Cursor List"})
    response = client.shutdown()
    assert response["ok"]
    thread.join(timeout=10.0)
    assert not thread.is_alive()
    assert not instance.socket_path.exists()
    # The persistent store was written on the way down.
    assert (instance.engine.persistent_store.path).exists()
    with pytest.raises(DaemonError):
        client.ping()


def test_parallel_daemon_serves_over_socket(tmp_path):
    """A ``jobs > 1`` daemon answers over the socket without hanging clients.

    Regression: the pool used to fork during the first dispatching
    request, so the workers inherited the accepted connection fd and a
    client reading to EOF hung forever even though the response was sent.
    The daemon now pre-forks before accepting, and the client stops at
    the protocol's newline delimiter either way.
    """
    instance = VerifierDaemon(
        tmp_path / "par.sock", jobs=2, persist=False, timeout_scale=TIMEOUT_SCALE
    )
    thread = threading.Thread(target=instance.serve_forever, daemon=True)
    thread.start()
    client = DaemonClient(instance.socket_path)
    deadline = time.monotonic() + 15.0
    while True:
        try:
            client.ping()
            break
        except DaemonError:
            if time.monotonic() > deadline:
                raise
            time.sleep(0.05)
    try:
        # serve_forever forked the pool before accepting the first
        # connection, so no request can leak its fd into a worker.
        assert instance.engine.pool_warm
        cold = client.request({"op": "verify", "name": "Array List"})
        assert cold["ok"] and cold["report"]["verified"]
        assert any(not outcome["cached"] for outcome in outcomes_of(cold["report"]))
        warm = client.request({"op": "verify", "name": "Array List"})
        assert warm["ok"]
        assert all(outcome["cached"] for outcome in outcomes_of(warm["report"]))
    finally:
        client.shutdown()
        thread.join(timeout=10.0)
        instance.close()
    assert not thread.is_alive()


def test_broken_warm_pool_is_discarded(monkeypatch):
    """A dead executor must not survive as the daemon's warm pool."""
    from concurrent.futures.process import BrokenProcessPool

    from repro.suite import structure_by_name
    from repro.verifier import parallel

    engine = VerificationEngine(
        default_portfolio().scaled(TIMEOUT_SCALE), jobs=2, keep_pool_warm=True
    )
    cls = structure_by_name("Cursor List")

    def boom(self, items):
        raise BrokenProcessPool("worker died")
        yield  # unreachable; makes this a generator like the real run()

    monkeypatch.setattr(parallel.ProverPool, "run", boom)
    with pytest.raises(BrokenProcessPool):
        engine.verify_class(cls)
    assert engine._pool is None
    monkeypatch.undo()
    # The next request forks a fresh pool and succeeds.
    report = engine.verify_class(cls)
    assert report.sequents_total > 0
    assert engine._pool is not None
    engine.close()


def test_connect_to_missing_socket_is_a_clear_error(tmp_path):
    client = DaemonClient(tmp_path / "nobody-home.sock")
    with pytest.raises(DaemonError, match="cannot connect"):
        client.ping()


def test_bind_refuses_live_socket_and_replaces_stale(tmp_path, daemon):
    live, _, _ = daemon
    conflict = VerifierDaemon(live.socket_path, engine=VerificationEngine())
    with pytest.raises(DaemonError, match="already listening"):
        conflict.bind()
    # Closing the loser must not unlink the live daemon's socket.
    conflict.close()
    assert live.socket_path.exists()
    assert DaemonClient(live.socket_path).ping()["ok"]
    # A stale socket file (no listener behind it) is silently replaced.
    import socket as socket_module

    stale_path = tmp_path / "stale.sock"
    orphan = socket_module.socket(socket_module.AF_UNIX, socket_module.SOCK_STREAM)
    orphan.bind(str(stale_path))
    orphan.close()  # leaves the socket file behind with nobody listening
    replacement = VerifierDaemon(stale_path, engine=VerificationEngine())
    try:
        replacement.bind()
        assert replacement.running
    finally:
        replacement.close()
    assert not stale_path.exists()
    # A path holding a regular file is never deleted.
    plain_path = tmp_path / "not-a-socket"
    plain_path.write_text("precious")
    mistake = VerifierDaemon(plain_path, engine=VerificationEngine())
    with pytest.raises(DaemonError, match="not a socket"):
        mistake.bind()
    assert plain_path.read_text() == "precious"
