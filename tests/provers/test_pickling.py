"""Regression tests: proof tasks must cross process boundaries safely.

The parallel scheduler pickles :class:`ProofTask` / :class:`Sequent` into
worker processes and :class:`DispatchResult` back out.  Interned terms
must *re-intern* on unpickle (so hash-consing invariants -- identity
equality, O(1) hashes, memoized passes -- hold in the worker), and no
process-dependent state (such as a cached string hash computed under the
parent's ``PYTHONHASHSEED``) may survive serialization.
"""

from __future__ import annotations

import pickle
import subprocess
import sys
from pathlib import Path

import repro
from repro.logic import builder as b
from repro.logic.sorts import INT, OBJ, FunSort, MapSort, SetSort, Sort, TupleSort
from repro.logic.terms import Const, IntLit, Var
from repro.provers.dispatch import default_portfolio
from repro.provers.result import ProofTask
from repro.suite import all_structures
from repro.verifier.engine import VerificationEngine


def round_trip(value):
    return pickle.loads(pickle.dumps(value))


class TestTermReinterning:
    def test_every_node_kind_reinterns_to_the_same_object(self):
        terms = [
            Var("x", INT),
            Const("null", OBJ),
            IntLit(41),
            b.Bool(True),
            b.And(b.Lt(b.IntVar("x"), b.Int(3)), b.BoolVar("p")),
            b.ForAll([b.IntVar("i")], b.Le(b.IntVar("i"), b.IntVar("n"))),
        ]
        for term in terms:
            assert round_trip(term) is term

    def test_reinterned_terms_share_structure(self):
        # Unpickling a compound term must reuse already-interned subterms,
        # not build a parallel universe of equal-but-distinct nodes.
        formula = b.Or(b.Lt(b.IntVar("x"), b.Int(0)), b.Eq(b.IntVar("x"), b.Int(0)))
        copy = round_trip(formula)
        assert copy.args[0] is formula.args[0]
        assert copy.args[0].args[0] is b.IntVar("x")

    def test_composite_sorts_round_trip(self):
        sorts = [
            Sort("int"),
            SetSort(OBJ),
            MapSort(OBJ, INT),
            TupleSort((INT, OBJ)),
            FunSort((OBJ,), INT),
            SetSort(MapSort(OBJ, SetSort(INT))),
        ]
        for sort in sorts:
            copy = round_trip(sort)
            assert copy == sort
            assert hash(copy) == hash(sort)

    def test_sorts_do_not_carry_cached_hashes(self):
        # The lazily cached ``_hash`` depends on the process's string hash
        # seed; pickling must rebuild through the constructor and drop it.
        sort = SetSort(OBJ)
        hash(sort)  # force the cache on the original
        assert "_hash" in sort.__dict__
        assert "_hash" not in round_trip(sort).__dict__


class TestTaskPickling:
    def engine_and_structure(self):
        engine = VerificationEngine(default_portfolio().scaled(0.4))
        cls = next(c for c in all_structures() if c.name == "Linked List")
        return engine, cls

    def test_sequents_and_tasks_round_trip(self):
        engine, cls = self.engine_and_structure()
        for method in cls.methods:
            for sequent in engine.method_sequents(cls, method):
                task = engine.task_for(sequent)
                assert round_trip(sequent) == sequent
                copy = round_trip(task)
                assert copy == task
                assert copy.goal is task.goal  # re-interned, not duplicated
                assert copy.assumptions == task.assumptions

    def test_restricted_task_round_trips(self):
        task = ProofTask(
            (("h1", b.Lt(b.IntVar("x"), b.Int(1))), ("h2", b.BoolVar("p"))),
            b.BoolVar("p"),
            label="goal",
        )
        restricted = task.restricted_to({"h2"})
        assert round_trip(restricted) == restricted

    def test_dispatch_result_round_trips(self):
        engine, cls = self.engine_and_structure()
        method = cls.methods[0]
        sequent = engine.method_sequents(cls, method)[0]
        result = engine.portfolio.dispatch(engine.task_for(sequent))
        copy = round_trip(result)
        assert copy.proved == result.proved
        assert copy.refuted == result.refuted
        assert copy.winning_prover == result.winning_prover
        assert copy.cached == result.cached
        assert copy.task == result.task
        assert [(a.outcome, a.prover) for a in copy.attempts] == [
            (a.outcome, a.prover) for a in result.attempts
        ]


_CROSS_SEED_SCRIPT = """
import pickle, sys
from repro.logic import builder as b
from repro.provers.cache import task_fingerprint
with open(sys.argv[1], "rb") as handle:
    task = pickle.load(handle)
# Terms must work as dict keys against freshly built equal terms: that is
# the hash-consing invariant the provers rely on.
index = {formula: name for name, formula in task.assumptions}
fresh = b.Lt(b.IntVar("x"), b.Int(1))
assert index[fresh] == "h1", index
assert task.goal is b.BoolVar("p")
print(repr(task_fingerprint(task)))
"""


def test_unpickled_tasks_work_under_a_different_hash_seed(tmp_path):
    """The regression the parallel workers depend on: a task pickled under
    one ``PYTHONHASHSEED`` must re-intern (fresh hashes, identity equality)
    in a process running under another."""
    task = ProofTask(
        (("h1", b.Lt(b.IntVar("x"), b.Int(1))), ("h2", b.BoolVar("p"))),
        b.BoolVar("p"),
        label="goal",
    )
    blob = tmp_path / "task.pickle"
    blob.write_bytes(pickle.dumps(task))
    src_root = str(Path(repro.__file__).resolve().parent.parent)
    fingerprints = set()
    for seed in ("1", "7777"):
        result = subprocess.run(
            [sys.executable, "-c", _CROSS_SEED_SCRIPT, str(blob)],
            capture_output=True,
            text=True,
            env={"PYTHONPATH": src_root, "PYTHONHASHSEED": seed, "PATH": ""},
        )
        assert result.returncode == 0, result.stderr
        fingerprints.add(result.stdout)
    from repro.provers.cache import task_fingerprint

    fingerprints.add(repr(task_fingerprint(task)) + "\n")
    assert len(fingerprints) == 1
