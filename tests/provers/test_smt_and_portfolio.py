"""Tests for the SMT-lite prover, the specialised provers and the dispatcher.

The SMT cases are representative of the sequents that arise from the
benchmark data structures: ground arithmetic/equality reasoning, reasoning
about function updates (field and array assignment), quantified invariants
with instantiation, comprehension-defined specification variables, and
existentially quantified goals resolved by a witness in the assumption base.
"""

import pytest

from repro.logic import BOOL, INT, OBJ, fun_of, map_of, set_of, tuple_of
from repro.logic.parser import parse_formula
from repro.provers import (
    FiniteModelFinder,
    FolProver,
    Outcome,
    ProofTask,
    SetCardinalityProver,
    SmtProver,
    default_portfolio,
)

ENV = {
    "x": INT, "y": INT, "z": INT, "i": INT, "j": INT, "size": INT, "csize": INT,
    "old_csize": INT, "capacity": INT,
    "a": OBJ, "b": OBJ, "o": OBJ, "n": OBJ, "first": OBJ,
    "f": map_of(OBJ, OBJ), "next": map_of(OBJ, OBJ), "g": map_of(INT, INT),
    "elements": map_of(INT, OBJ), "elements2": map_of(INT, OBJ),
    "S": set_of(OBJ), "T": set_of(OBJ), "nodes": set_of(OBJ),
    "old_nodes": set_of(OBJ),
    "content": set_of(tuple_of(INT, OBJ)), "old_content": set_of(tuple_of(INT, OBJ)),
}
FUNCS = {"p": fun_of([OBJ], BOOL), "q": fun_of([OBJ], BOOL), "r": fun_of([OBJ], BOOL)}


def task(assumptions, goal):
    return ProofTask(
        tuple(
            (f"h{i}", parse_formula(a, ENV, FUNCS)) for i, a in enumerate(assumptions)
        ),
        parse_formula(goal, ENV, FUNCS),
    )


SMT_PROVABLE = [
    (["x <= y", "y < z"], "x < z"),
    (["a = b"], "f[a] = f[b]"),
    (["f[a] ~= f[b]"], "a ~= b"),
    (["x = y", "g[x] = 3"], "g[y] > 2"),
    ([], "x < x + 1"),
    ([], "elements[i := o][i] = o"),
    (["j ~= i"], "elements[i := o][j] = elements[j]"),
    (["elements2 = elements[i := o]", "j ~= i"], "elements2[j] = elements[j]"),
    (
        [
            "ALL k : int. 0 <= k & k < size --> elements[k] ~= null",
            "0 <= i",
            "i < size",
        ],
        "elements[i] ~= null",
    ),
    (
        ["(i, o) in content", "ALL k : int, m : obj. (k, m) in content --> 0 <= k"],
        "0 <= i",
    ),
    (["a in S", "S subseteq {b}"], "a = b"),
    (["(i, o) in content"], "EX k : int. (k, o) in content"),
    (
        ["content = old_content Un {(i, o)}", "(j, b) in old_content"],
        "(j, b) in content",
    ),
    (
        [
            "ALL m : obj. m in nodes --> next[m] in nodes | next[m] = null",
            "a in nodes",
            "next[a] ~= null",
        ],
        "next[a] in nodes",
    ),
    (
        [
            "content = {(k, m). 0 <= k & k < size & m = elements[k]}",
            "0 <= i",
            "i < size",
        ],
        "(i, elements[i]) in content",
    ),
]

SMT_NOT_PROVABLE = [
    (["x <= y"], "y <= x"),
    (["a in nodes"], "next[a] in nodes"),
    ([], "g[x] = g[y]"),
]


class TestSmtProver:
    @pytest.mark.parametrize("assumptions, goal", SMT_PROVABLE)
    def test_proves_valid_sequents(self, assumptions, goal):
        result = SmtProver().prove(task(assumptions, goal), timeout=15.0)
        assert result.is_proved, result.reason

    @pytest.mark.parametrize("assumptions, goal", SMT_NOT_PROVABLE)
    def test_never_proves_invalid_sequents(self, assumptions, goal):
        result = SmtProver().prove(task(assumptions, goal), timeout=10.0)
        assert not result.is_proved


class TestSetCardinalityProver:
    def test_insert_increases_cardinality(self):
        result = SetCardinalityProver().prove(
            task(
                [
                    "csize = card nodes",
                    "~(n in nodes)",
                    "old_csize = csize",
                ],
                "card (nodes Un {n}) = old_csize + 1",
            ),
            timeout=10.0,
        )
        assert result.is_proved

    def test_subset_transitivity(self):
        result = SetCardinalityProver().prove(
            task(["S subseteq T", "T subseteq nodes"], "S subseteq nodes"),
            timeout=10.0,
        )
        assert result.is_proved

    def test_subset_cardinality_monotone(self):
        result = SetCardinalityProver().prove(
            task(["S subseteq T"], "card S <= card T"), timeout=10.0
        )
        assert result.is_proved

    def test_empty_set_has_no_members(self):
        result = SetCardinalityProver().prove(
            task(["card S = 0"], "a ~in S"), timeout=10.0
        )
        assert result.is_proved

    def test_does_not_prove_invalid(self):
        result = SetCardinalityProver().prove(
            task([], "card S <= card T"), timeout=10.0
        )
        assert not result.is_proved

    def test_declines_out_of_fragment_goals(self):
        result = SetCardinalityProver().prove(task([], "f[a] = f[b]"), timeout=5.0)
        assert result.outcome is Outcome.UNKNOWN


class TestFolProver:
    def test_modus_ponens_chain(self):
        result = FolProver().prove(
            task(
                ["ALL v : obj. p(v) --> q(v)", "ALL v : obj. q(v) --> r(v)", "p(a)"],
                "r(a)",
            ),
            timeout=10.0,
        )
        assert result.is_proved

    def test_existential_goal(self):
        result = FolProver().prove(task(["p(a)"], "EX v : obj. p(v)"), timeout=10.0)
        assert result.is_proved

    def test_does_not_prove_invalid(self):
        result = FolProver().prove(task(["p(a)"], "q(a)"), timeout=5.0)
        assert not result.is_proved


class TestModelFinder:
    def test_refutes_invalid_sequent(self):
        result = FiniteModelFinder().prove(task(["x <= y"], "y <= x"), timeout=5.0)
        assert result.outcome is Outcome.REFUTED
        assert result.countermodel is not None

    def test_declines_uninterpreted_symbols(self):
        result = FiniteModelFinder().prove(task(["p(a)"], "q(a)"), timeout=5.0)
        assert result.outcome is Outcome.UNKNOWN


class TestPortfolio:
    def test_dispatch_uses_specialised_prover(self):
        portfolio = default_portfolio()
        result = portfolio.dispatch(
            task(
                ["csize = card nodes", "~(n in nodes)"],
                "card (nodes Un {n}) = csize + 1",
            )
        )
        assert result.proved
        assert result.winning_prover == "sets"

    def test_dispatch_smt_first(self):
        portfolio = default_portfolio()
        result = portfolio.dispatch(task(["x <= y", "y < z"], "x < z"))
        assert result.proved and result.winning_prover == "smt"

    def test_restriction_and_statistics(self):
        portfolio = default_portfolio().only("smt")
        assert portfolio.prover_names == ["smt"]
        result = portfolio.dispatch(task([], "x < x + 1"))
        assert result.proved
        assert portfolio.statistics.sequents_attempted == 1
        assert portfolio.statistics.sequents_proved == 1

    def test_unprovable_sequent_reports_all_attempts(self):
        portfolio = default_portfolio()
        result = portfolio.dispatch(task(["x <= y"], "y <= x"))
        assert not result.proved
        assert len(result.attempts) == len(portfolio.prover_names)

    def test_scaled_timeouts(self):
        portfolio = default_portfolio().scaled(0.5)
        assert portfolio.entries[0].timeout == pytest.approx(
            default_portfolio().entries[0].timeout * 0.5
        )
