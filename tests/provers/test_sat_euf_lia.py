"""Tests for the low-level reasoning engines: SAT, congruence closure, LIA."""

import itertools

from hypothesis import given, settings, strategies as st

from repro.logic import Int, IntVar, ObjVar, Select, Var, map_of
from repro.logic.sorts import OBJ
from repro.provers.euf import CongruenceClosure
from repro.provers.lia import LinearExpr, LinearSolver, linearize
from repro.provers.sat import SatSolver, Tseitin


# -- SAT ---------------------------------------------------------------------


def _brute_force(clauses, nvars):
    for bits in itertools.product([False, True], repeat=nvars):
        model = {i + 1: bits[i] for i in range(nvars)}
        if all(any(model[abs(l)] == (l > 0) for l in c) for c in clauses):
            return True
    return False


class TestSatSolver:
    def test_simple_sat(self):
        solver = SatSolver()
        solver.add_clauses([[1, 2], [-1, 2], [1, -2]])
        result = solver.solve()
        assert result.satisfiable
        assert result.model[1] and result.model[2]

    def test_simple_unsat(self):
        solver = SatSolver()
        solver.add_clauses([[1], [-1]])
        assert not solver.solve().satisfiable

    def test_duplicate_clauses_deduplicated(self):
        solver = SatSolver()
        solver.add_clauses([[1, 2], [2, 1], [1, 2, 2]])
        assert len(solver.clauses) == 1
        # Repeated add_clauses calls (e.g. re-asserting a translation) must
        # not bloat the clause database either.
        solver.add_clauses([[1, 2], [-1, 2]])
        assert len(solver.clauses) == 2
        assert solver.solve().satisfiable

    def test_pigeonhole_unsat(self):
        # 3 pigeons, 2 holes: variable p(i,h) = 2*i + h + 1.
        solver = SatSolver()
        var = lambda i, h: 2 * i + h + 1  # noqa: E731
        for i in range(3):
            solver.add_clause([var(i, 0), var(i, 1)])
        for h in range(2):
            for i in range(3):
                for j in range(i + 1, 3):
                    solver.add_clause([-var(i, h), -var(j, h)])
        assert not solver.solve().satisfiable

    def test_empty_clause_is_unsat(self):
        solver = SatSolver()
        solver.add_clause([1])
        solver.clauses.append([])
        assert not solver.solve().satisfiable

    def test_assumptions(self):
        solver = SatSolver()
        solver.add_clause([1, 2])
        assert solver.solve(assumptions=[-1]).satisfiable
        assert not solver.solve(assumptions=[-1, -2]).satisfiable


@given(
    clause_data=st.lists(
        st.lists(
            st.tuples(st.integers(1, 6), st.booleans()).map(
                lambda p: p[0] if p[1] else -p[0]
            ),
            min_size=1,
            max_size=4,
        ),
        min_size=1,
        max_size=24,
    )
)
@settings(max_examples=150, deadline=None)
def test_sat_matches_brute_force(clause_data):
    solver = SatSolver()
    for clause in clause_data:
        solver.add_clause(clause)
    assert solver.solve().satisfiable == _brute_force(clause_data, 6)


class TestTseitin:
    def test_atom_sharing(self):
        tseitin = Tseitin()
        assert tseitin.atom_var("a") == tseitin.atom_var("a")
        assert tseitin.atom_var("a") != tseitin.atom_var("b")

    def test_and_or_encoding(self):
        tseitin = Tseitin()
        a, b = tseitin.atom_var("a"), tseitin.atom_var("b")
        conj = tseitin.encode_and([a, b])
        tseitin.assert_literal(conj)
        result = tseitin.solve()
        assert result.satisfiable
        assert result.model[a] and result.model[b]


# -- Congruence closure --------------------------------------------------------

a, b, c = ObjVar("a"), ObjVar("b"), ObjVar("c")
f = Var("f", map_of(OBJ, OBJ))


class TestCongruenceClosure:
    def test_transitivity(self):
        cc = CongruenceClosure()
        cc.assert_equal(a, b)
        cc.assert_equal(b, c)
        assert cc.are_equal(a, c)

    def test_congruence_over_select(self):
        cc = CongruenceClosure()
        cc.intern(Select(f, a))
        cc.intern(Select(f, b))
        cc.assert_equal(a, b)
        assert cc.are_equal(Select(f, a), Select(f, b))

    def test_disequality_conflict(self):
        cc = CongruenceClosure()
        cc.assert_distinct(Select(f, a), Select(f, b))
        cc.assert_equal(a, b)
        assert cc.check() is not None

    def test_consistent_state(self):
        cc = CongruenceClosure()
        cc.assert_equal(a, b)
        cc.assert_distinct(a, c)
        assert cc.check() is None

    def test_distinct_int_literals_conflict(self):
        cc = CongruenceClosure()
        cc.assert_equal(Int(1), Int(2))
        assert cc.check() is not None

    def test_implied_equalities(self):
        cc = CongruenceClosure()
        cc.assert_equal(a, b)
        pairs = cc.implied_equalities([a, b, c])
        assert (a, b) in pairs or (b, a) in pairs


# -- Linear integer arithmetic ----------------------------------------------------

x, y, z = IntVar("x"), IntVar("y"), IntVar("z")


class TestLinearSolver:
    def test_cycle_is_infeasible(self):
        solver = LinearSolver()
        solver.add_le_terms(x, y)
        solver.add_lt_terms(y, z)
        solver.add_le_terms(z, x)
        assert solver.is_infeasible()

    def test_chain_is_feasible(self):
        solver = LinearSolver()
        solver.add_le_terms(x, y)
        solver.add_le_terms(y, z)
        assert not solver.is_infeasible()

    def test_entailment(self):
        solver = LinearSolver()
        solver.add_le_terms(x, y)
        solver.add_le_terms(y, z)
        assert solver.entails_le(linearize(x).sub(linearize(z)))
        assert not solver.entails_le(linearize(z).sub(linearize(x)))

    def test_equality_constraints(self):
        solver = LinearSolver()
        solver.add_eq_terms(x, y)
        solver.add_lt_terms(x, y)
        assert solver.is_infeasible()

    def test_integer_tightening(self):
        # x < y and y < x + 1 has rational solutions but no integer ones;
        # tightening x < y to x + 1 <= y detects it.
        solver = LinearSolver()
        solver.add_lt_terms(x, y)
        solver.add_lt_terms(y, Var("x", x.sort))
        assert solver.is_infeasible()

    def test_implied_equalities(self):
        solver = LinearSolver()
        solver.add_le_terms(x, y)
        solver.add_le_terms(y, x)
        assert (x, y) in solver.implied_equalities([x, y, z])

    def test_linearize_nested(self):
        from repro.logic.builder import Plus

        expr = linearize(Plus(x, x, Int(2)))
        assert expr.coefficient(x) == 2
        assert expr.constant == 2

    def test_linear_expr_algebra(self):
        expr = LinearExpr.of_atom(x).scale(3).add(LinearExpr.of_constant(4))
        assert expr.coefficient(x) == 3 and expr.constant == 4
        assert expr.sub(expr).is_constant
