"""Coverage for the theory combination, array lemmas and preprocessing."""

from repro.logic import INT, OBJ, map_of, set_of
from repro.logic.clauses import Literal
from repro.logic.parser import parse_formula, parse_term
from repro.provers.arrays import select_store_lemmas
from repro.provers.quant import InstantiationEngine, collect_ground_terms
from repro.provers.result import ProofTask
from repro.provers.rewriter import prepare, split_conjuncts
from repro.provers.theory import TheoryChecker

ENV = {
    "x": INT, "y": INT, "i": INT, "j": INT, "size": INT,
    "a": OBJ, "b": OBJ, "o": OBJ,
    "g": map_of(INT, INT), "f": map_of(OBJ, OBJ),
    "elements": map_of(INT, OBJ), "nodes": set_of(OBJ),
}
F = lambda text: parse_formula(text, ENV)  # noqa: E731
T = lambda text: parse_term(text, ENV)  # noqa: E731


class TestTheoryChecker:
    def test_euf_lia_exchange_detects_conflict(self):
        literals = [
            Literal(F("x = y")),
            Literal(F("g[x] = 3")),
            Literal(F("2 < g[y]"), positive=False),
        ]
        conflict = TheoryChecker().check(literals)
        assert conflict is not None
        assert len(conflict.core) <= 3

    def test_consistent_literals(self):
        literals = [Literal(F("x <= y")), Literal(F("f[a] = b"))]
        assert TheoryChecker().check(literals) is None

    def test_uninterpreted_boolean_atoms(self):
        literals = [Literal(F("a in nodes")), Literal(F("a in nodes"), positive=False)]
        assert TheoryChecker().check(literals) is not None

    def test_core_minimisation(self):
        literals = [
            Literal(F("a = b")),
            Literal(F("a in nodes")),
            Literal(F("x <= y")),
            Literal(F("f[a] = f[b]"), positive=False),
        ]
        conflict = TheoryChecker().check(literals)
        assert conflict is not None
        core_atoms = {str(lit.atom) for lit in conflict.core}
        assert "a in nodes" not in core_atoms
        assert "x <= y" not in core_atoms


class TestArrayLemmas:
    def test_lemma_generated_for_select_over_store(self):
        formula = F("elements[i := o][j] = elements[j]")
        lemmas = select_store_lemmas([formula])
        assert lemmas
        assert any("i = j" in str(l) or "j = i" in str(l) for l in lemmas)

    def test_no_lemmas_without_stores(self):
        assert select_store_lemmas([F("elements[i] = o")]) == []

    def test_nested_stores_iterate(self):
        formula = F("elements[i := o][j := o][x] = o")
        lemmas = select_store_lemmas([formula])
        assert len(lemmas) >= 2


class TestPreparation:
    def test_split_conjuncts(self):
        assert len(split_conjuncts(F("x <= y & y <= x & a = b"))) == 3

    def test_prepare_separates_ground_and_axioms(self):
        task = ProofTask(
            (("h", F("ALL k : int. g[k] <= g[k + 1]")), ("g0", F("x <= y"))),
            F("g[0] <= g[1]"),
        )
        prepared = prepare(task)
        assert prepared.axioms and prepared.ground
        assert not prepared.trivially_proved

    def test_prepare_trivial_goal(self):
        task = ProofTask((), F("x = x"))
        assert prepare(task).trivially_proved

    def test_prepare_inlines_definitions(self):
        task = ProofTask(
            (("def", F("y = x + 1")), ("use", F("g[y] = 3"))),
            F("g[x + 1] = 3"),
        )
        prepared = prepare(task)
        rendered = " ; ".join(str(g) for g in prepared.ground)
        assert "x + 1" in rendered

    def test_goal_pieces_are_priorities(self):
        task = ProofTask((("h", F("x <= y")),), F("EX k : int. g[k] = 0"))
        prepared = prepare(task)
        assert prepared.goal_hint


class TestInstantiation:
    def test_ground_term_collection(self):
        by_sort = collect_ground_terms([F("g[3] <= g[size]"), F("a in nodes")])
        ints = {str(t) for t in by_sort.get(INT, [])}
        assert "3" in ints and "size" in ints

    def test_trigger_based_candidates(self):
        engine = InstantiationEngine()
        axiom = F("ALL k : int. 0 <= k & k < size --> elements[k] ~= null")
        engine.add_axiom(axiom)
        ground = [F("0 <= i"), F("i < size"), F("elements[i] = null")]
        instances = engine.saturate(ground, ground)
        assert any("elements[i]" in str(inst) for inst in instances)

    def test_instantiation_budget_respected(self):
        engine = InstantiationEngine(max_total_instances=5)
        engine.add_axiom(F("ALL k : int. g[k] <= g[k + 1]"))
        ground = [F(f"g[{n}] = {n}") for n in range(10)]
        engine.saturate(ground, [])
        assert engine.total_instances <= 5
