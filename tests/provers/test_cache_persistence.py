"""Tests for the persistent (cross-run) proof cache store.

Covers the satellite checklist: round-trip save/load, version and
portfolio mismatches degrading to a cold start (never a crash), corrupted
and truncated cache files, concurrent writer atomicity, and the
engine-level wiring (disk-hit provenance, ``persist=False`` read-only
mode).
"""

from __future__ import annotations

import json
import multiprocessing
import os

import pytest

from repro.provers.cache import (
    CACHE_FORMAT_VERSION,
    FINGERPRINT_VERSION,
    CachedVerdict,
    PersistentCacheStore,
    ProofCache,
    fingerprint_from_json,
    fingerprint_to_json,
)
from repro.provers.dispatch import PortfolioSpec, default_portfolio
from repro.suite import all_structures
from repro.verifier.engine import VerificationEngine


def sample_entries() -> dict[tuple, CachedVerdict]:
    return {
        (("a", ("v", "x", "int")), ("t", True)): CachedVerdict(
            True, False, "smt", wall=0.125, cpu=0.118
        ),
        (("b", 3), ("i", -12)): CachedVerdict(False, True, "model-finder"),
        ((), ("c", "null", "obj")): CachedVerdict(False, False, ""),
    }


class TestFingerprintCodec:
    def test_round_trip_through_json(self):
        for key in sample_entries():
            wire = json.loads(json.dumps(fingerprint_to_json(key)))
            assert fingerprint_from_json(wire) == key

    def test_rejects_non_literal_elements(self):
        with pytest.raises(ValueError):
            fingerprint_to_json((("i", 1.5),))
        with pytest.raises(ValueError):
            fingerprint_to_json((None,))

    def test_rejects_garbage_on_decode(self):
        with pytest.raises(ValueError):
            fingerprint_from_json([["i", None]])
        with pytest.raises(ValueError):
            fingerprint_from_json({"not": "a fingerprint"})


class TestRoundTrip:
    def test_save_then_load(self, tmp_path):
        store = PersistentCacheStore(tmp_path, "smt:4;fol:2")
        entries = sample_entries()
        assert store.save(entries) == len(entries)
        loaded = PersistentCacheStore(tmp_path, "smt:4;fol:2").load()
        assert set(loaded) == set(entries)
        for key, verdict in entries.items():
            assert loaded[key].proved == verdict.proved
            assert loaded[key].refuted == verdict.refuted
            assert loaded[key].winning_prover == verdict.winning_prover
            # Measured timings survive the round trip (0.0 when the
            # sequent was never actually dispatched).
            assert loaded[key].wall == verdict.wall
            assert loaded[key].cpu == verdict.cpu
            # Provenance is rewritten on load.
            assert loaded[key].origin == "disk"

    def test_profiles_round_trip_and_merge(self, tmp_path):
        store = PersistentCacheStore(tmp_path, "k")
        store.save(
            {},
            profiles={"Hash Table": {"wall": 12.5, "cpu": 11.0, "sequents": 58}},
        )
        store.save(
            {},
            profiles={"Array List": {"wall": 0.5, "cpu": 0.4, "sequents": 26}},
        )
        store.load()
        # Merge-saves union profiles per class, like entries.
        assert set(store.last_profiles) == {"Hash Table", "Array List"}
        assert store.last_profiles["Hash Table"]["wall"] == 12.5
        assert store.last_profiles["Array List"]["sequents"] == 26

    def test_damaged_profiles_are_skipped(self, tmp_path):
        store = PersistentCacheStore(tmp_path, "smt:4")
        store.save(
            sample_entries(),
            profiles={"Good": {"wall": 1.0, "cpu": 0.9, "sequents": 3}},
        )
        payload = json.loads(store.path.read_text())
        payload["profiles"]["Bad"] = {"wall": "not a number"}
        payload["profiles"]["Worse"] = "not even a mapping"
        store.path.write_text(json.dumps(payload))
        entries = store.load()
        assert set(entries) == set(sample_entries())
        assert set(store.last_profiles) == {"Good"}

    def test_old_format_store_cold_starts_cleanly(self, tmp_path):
        """A pre-v2 store (format 1: no timings, no profiles) must be
        discarded as a cold start, never misread or crashed on."""
        store = PersistentCacheStore(tmp_path, "smt:4")
        store.path.parent.mkdir(parents=True, exist_ok=True)
        old_payload = {
            "format": 1,
            "fingerprint_version": FINGERPRINT_VERSION,
            "portfolio": "smt:4",
            "entries": [
                [[["i", 1]], {"proved": True, "refuted": False, "prover": "smt"}]
            ],
        }
        store.path.write_text(json.dumps(old_payload))
        assert store.load() == {}
        assert store.last_load_status == "cold:format-mismatch"
        assert store.last_profiles == {}
        # A save over the old store recovers to the current format.
        store.save(sample_entries())
        assert len(store.load()) == len(sample_entries())
        assert store.last_load_status.startswith("warm:")

    def test_entries_without_timing_fields_load_as_unmeasured(self, tmp_path):
        """Entry-level tolerance: a v2 store whose entries lack wall/cpu
        (e.g. hand-edited) still loads, with timings defaulting to 0."""
        store = PersistentCacheStore(tmp_path, "smt:4")
        store.save(sample_entries())
        payload = json.loads(store.path.read_text())
        for _, verdict in payload["entries"]:
            verdict.pop("wall", None)
            verdict.pop("cpu", None)
        store.path.write_text(json.dumps(payload))
        loaded = store.load()
        assert set(loaded) == set(sample_entries())
        assert all(v.wall == 0.0 and v.cpu == 0.0 for v in loaded.values())

    def test_missing_file_is_cold(self, tmp_path):
        store = PersistentCacheStore(tmp_path, "smt:4")
        assert store.load() == {}
        assert store.last_load_status == "cold:missing"

    def test_merge_accumulates_across_saves(self, tmp_path):
        store = PersistentCacheStore(tmp_path, "k")
        first = {(("i", 1),): CachedVerdict(True, False, "smt")}
        second = {(("i", 2),): CachedVerdict(False, False, "fol")}
        store.save(first)
        store.save(second)
        assert set(store.load()) == set(first) | set(second)

    def test_save_without_merge_replaces(self, tmp_path):
        store = PersistentCacheStore(tmp_path, "k")
        store.save({(("i", 1),): CachedVerdict(True, False, "smt")})
        store.save({(("i", 2),): CachedVerdict(True, False, "smt")}, merge=False)
        assert set(store.load()) == {(("i", 2),)}

    def test_merge_saves_do_not_clobber_load_status(self, tmp_path):
        # Regression: merge-saves re-read the file internally; that must
        # not rewrite the cold/warm diagnostic of the *explicit* load.
        store = PersistentCacheStore(tmp_path, "k")
        assert store.load() == {}
        assert store.last_load_status == "cold:missing"
        store.save({(("i", 1),): CachedVerdict(True, False, "smt")})
        store.save({(("i", 2),): CachedVerdict(True, False, "smt")})
        assert store.last_load_status == "cold:missing"

    def test_save_caps_store_size_keeping_new_entries(self, tmp_path):
        store = PersistentCacheStore(tmp_path, "k", max_entries=4)
        store.save({(("i", n),): CachedVerdict(True, False, "smt") for n in range(4)})
        store.save({(("i", 99),): CachedVerdict(True, False, "fol")})
        loaded = store.load()
        assert len(loaded) == 4
        assert (("i", 99),) in loaded

    def test_preload_never_fills_cache_to_eviction_point(self):
        # Regression: an over-large store must not preload the cache so
        # full that the first new verdict's store() wipes every entry.
        cache = ProofCache(max_entries=8)
        cache.preload(
            {(("i", n),): CachedVerdict(True, False, "smt") for n in range(20)}
        )
        assert 0 < len(cache) < 8
        cache.store((("i", 100),), CachedVerdict(True, False, "smt"))
        assert cache.lookup((("i", 0),)) is not None  # preload survived


class TestInvalidation:
    def _write_payload(self, tmp_path, **overrides):
        store = PersistentCacheStore(tmp_path, "smt:4")
        store.save(sample_entries())
        payload = json.loads(store.path.read_text())
        payload.update(overrides)
        store.path.write_text(json.dumps(payload))
        return store

    def test_fingerprint_version_mismatch_cold_start(self, tmp_path):
        store = self._write_payload(
            tmp_path, fingerprint_version=FINGERPRINT_VERSION + 1
        )
        assert store.load() == {}
        assert store.last_load_status == "cold:fingerprint-mismatch"

    def test_format_version_mismatch_cold_start(self, tmp_path):
        store = self._write_payload(tmp_path, format=CACHE_FORMAT_VERSION + 1)
        assert store.load() == {}
        assert store.last_load_status == "cold:format-mismatch"

    def test_portfolio_mismatch_cold_start(self, tmp_path):
        self._write_payload(tmp_path)
        other = PersistentCacheStore(tmp_path, "smt:8;fol:2")
        assert other.load() == {}
        assert other.last_load_status == "cold:portfolio-mismatch"

    def test_portfolio_key_tracks_timeout_scaling(self):
        base = default_portfolio()
        assert (
            PortfolioSpec.from_portfolio(base).cache_key
            != PortfolioSpec.from_portfolio(base.scaled(0.5)).cache_key
        )


class TestCorruptionRecovery:
    @pytest.mark.parametrize(
        "content",
        [
            "",  # empty file
            "{",  # truncated JSON
            "[]",  # wrong top-level type
            "null",
            '{"format": 1}',  # missing fields
            "\x00\x01\x02 binary junk",
        ],
        ids=["empty", "truncated", "list", "null", "partial", "binary"],
    )
    def test_corrupt_file_cold_start(self, tmp_path, content):
        store = PersistentCacheStore(tmp_path, "smt:4")
        store.path.parent.mkdir(parents=True, exist_ok=True)
        store.path.write_text(content)
        assert store.load() == {}
        assert store.last_load_status.startswith("cold:")

    def test_truncated_after_valid_save(self, tmp_path):
        store = PersistentCacheStore(tmp_path, "smt:4")
        store.save(sample_entries())
        raw = store.path.read_text()
        store.path.write_text(raw[: len(raw) // 2])
        assert store.load() == {}
        # A save over the truncated file recovers cleanly.
        store.save(sample_entries())
        assert len(store.load()) == len(sample_entries())

    def test_damaged_individual_entries_are_skipped(self, tmp_path):
        store = PersistentCacheStore(tmp_path, "smt:4")
        store.save(sample_entries())
        payload = json.loads(store.path.read_text())
        payload["entries"].append(
            ["not-a-fingerprint", {"proved": True, "refuted": False, "prover": "smt"}]
        )
        payload["entries"].append([[["i", 9]], "not a verdict"])
        payload["entries"].append(
            [[["i", 9.5]], {"proved": True, "refuted": False, "prover": "x"}]
        )
        payload["entries"].append("not even a pair")
        store.path.write_text(json.dumps(payload))
        loaded = store.load()
        assert set(loaded) == set(sample_entries())

    def test_no_temp_files_left_behind(self, tmp_path):
        store = PersistentCacheStore(tmp_path, "smt:4")
        store.save(sample_entries())
        leftovers = [p for p in os.listdir(tmp_path) if p.endswith(".tmp")]
        assert leftovers == []


def _concurrent_writer(args) -> int:
    directory, writer_id = args
    store = PersistentCacheStore(directory, "shared-key")
    for round_number in range(5):
        entries = {
            (("i", writer_id), ("i", round_number)): CachedVerdict(
                True, False, f"writer-{writer_id}"
            )
        }
        store.save(entries)
    return writer_id


class TestConcurrentWriters:
    def test_file_stays_valid_under_concurrent_saves(self, tmp_path):
        with multiprocessing.Pool(3) as pool:
            pool.map(_concurrent_writer, [(str(tmp_path), i) for i in range(3)])
        store = PersistentCacheStore(tmp_path, "shared-key")
        loaded = store.load()
        # The file is valid JSON with a coherent schema no matter how the
        # writers interleaved...
        assert store.last_load_status.startswith("warm:")
        # ...and the inter-process write lock makes merge-on-save atomic:
        # the union of every writer's batches survives.
        assert set(loaded) == {
            (("i", writer), ("i", round_number))
            for writer in range(3)
            for round_number in range(5)
        }


class TestEngineWiring:
    @pytest.fixture(scope="class")
    def linked_list(self):
        return next(c for c in all_structures() if c.name == "Linked List")

    def _engine(self, tmp_path, **kwargs) -> VerificationEngine:
        return VerificationEngine(
            default_portfolio().scaled(0.4), cache_dir=tmp_path, **kwargs
        )

    def test_second_run_hits_disk_with_identical_verdicts(self, tmp_path, linked_list):
        first = self._engine(tmp_path)
        cold = first.verify_class(linked_list)
        assert first.portfolio.statistics.cache_hits_disk == 0

        second = self._engine(tmp_path)
        warm = second.verify_class(linked_list)
        stats = second.portfolio.statistics
        assert stats.cache_hits_disk > 0
        assert stats.per_prover == {}  # no prover ever ran
        assert [
            (o.sequent.label, o.proved, o.prover)
            for m in cold.methods for o in m.outcomes
        ] == [
            (o.sequent.label, o.proved, o.prover)
            for m in warm.methods for o in m.outcomes
        ]
        warm_hits = [o.dispatch.cache_origin for m in warm.methods for o in m.outcomes]
        assert set(warm_hits) == {"disk"}

    def test_no_persist_is_read_only(self, tmp_path, linked_list):
        engine = self._engine(tmp_path, persist=False)
        engine.verify_class(linked_list)
        assert engine.persistent_store is not None
        assert not engine.persistent_store.path.exists()

    def test_parallel_and_persistent_compose(self, tmp_path, linked_list):
        first = self._engine(tmp_path, jobs=2)
        first.verify_class(linked_list)
        second = self._engine(tmp_path, jobs=2)
        second.verify_class(linked_list)
        stats = second.last_parallel_stats
        assert stats.dispatched == 0
        assert stats.hits_disk == stats.sequents_total
