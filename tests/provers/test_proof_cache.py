"""Tests for the sequent-level proof cache and its dispatcher integration."""

from __future__ import annotations

from repro.logic import builder as b
from repro.logic.terms import Var
from repro.provers.cache import ProofCache, task_fingerprint, term_fingerprint
from repro.provers.dispatch import (
    PortfolioEntry,
    ProverPortfolio,
    default_portfolio,
)
from repro.provers.interface import Prover
from repro.provers.result import Budget, Outcome, ProofTask, ProverResult
from repro.suite import all_structures
from repro.verifier.engine import VerificationEngine


def _lt(left: str, right: str):
    return b.Lt(b.IntVar(left), b.IntVar(right))


class TestFingerprints:
    def test_alpha_invariance(self):
        one = b.ForAll([b.IntVar("i")], b.Lt(b.IntVar("i"), b.IntVar("n")))
        two = b.ForAll([b.IntVar("j")], b.Lt(b.IntVar("j"), b.IntVar("n")))
        assert term_fingerprint(one) == term_fingerprint(two)

    def test_free_variables_distinguish(self):
        one = b.ForAll([b.IntVar("i")], b.Lt(b.IntVar("i"), b.IntVar("n")))
        other = b.ForAll([b.IntVar("i")], b.Lt(b.IntVar("i"), b.IntVar("m")))
        assert term_fingerprint(one) != term_fingerprint(other)

    def test_shadowing_respected(self):
        inner_shadow = b.ForAll(
            [b.IntVar("i")],
            b.Or(
                b.Lt(b.IntVar("i"), b.Int(0)),
                b.ForAll([b.IntVar("i")], b.Lt(b.IntVar("i"), b.Int(1))),
            ),
        )
        inner_fresh = b.ForAll(
            [b.IntVar("i")],
            b.Or(
                b.Lt(b.IntVar("i"), b.Int(0)),
                b.ForAll([b.IntVar("k")], b.Lt(b.IntVar("k"), b.Int(1))),
            ),
        )
        assert term_fingerprint(inner_shadow) == term_fingerprint(inner_fresh)

    def test_distinct_binder_references_distinguished(self):
        # Regression: with absolute de Bruijn levels plus the closed-subterm
        # env reset, `ALL a. ALL b. Q(b)` and `ALL a. ALL b. Q(a)` collided
        # (the reset renumbered the inner binder from level 0, aliasing the
        # outer binder).  Relative indices keep them apart.
        from repro.logic.sorts import BOOL, OBJ
        from repro.logic.terms import App, Binder, Var

        def nested(body_var: str):
            return Binder(
                "forall",
                (("a", OBJ),),
                Binder(
                    "forall",
                    (("b", OBJ),),
                    App("Q", (Var(body_var, OBJ),), BOOL),
                ),
            )

        assert term_fingerprint(nested("b")) != term_fingerprint(nested("a"))
        renamed = Binder(
            "forall",
            (("x", OBJ),),
            Binder("forall", (("y", OBJ),), App("Q", (Var("x", OBJ),), BOOL)),
        )
        assert term_fingerprint(nested("a")) == term_fingerprint(renamed)

    def test_task_key_ignores_assumption_names_and_order(self):
        goal = _lt("x", "z")
        one = ProofTask((("h1", _lt("x", "y")), ("h2", _lt("y", "z"))), goal)
        two = ProofTask((("b", _lt("y", "z")), ("a", _lt("x", "y"))), goal)
        assert task_fingerprint(one) == task_fingerprint(two)

    def test_task_key_distinguishes_goals(self):
        assumptions = (("h", _lt("x", "y")),)
        assert task_fingerprint(
            ProofTask(assumptions, _lt("x", "y"))
        ) != task_fingerprint(ProofTask(assumptions, _lt("y", "x")))


class _CountingProver(Prover):
    """Proves everything, counting invocations."""

    name = "counting"

    def __init__(self) -> None:
        self.calls = 0

    def attempt(self, task: ProofTask, budget: Budget) -> ProverResult:
        self.calls += 1
        return ProverResult(Outcome.PROVED, reason="stub")


class TestDispatchCaching:
    def test_second_dispatch_is_cached(self):
        prover = _CountingProver()
        portfolio = ProverPortfolio(
            [PortfolioEntry(prover, 1.0)], proof_cache=ProofCache()
        )
        task = ProofTask((("h", _lt("x", "y")),), _lt("x", "y"))
        first = portfolio.dispatch(task)
        second = portfolio.dispatch(task)
        assert first.proved and second.proved
        assert not first.cached and second.cached
        assert second.winning_prover == "counting"
        assert prover.calls == 1
        stats = portfolio.statistics
        assert stats.cache_hits == 1 and stats.cache_misses == 1
        assert stats.sequents_attempted == 2
        assert stats.sequents_proved == 2

    def test_alpha_variant_sequent_hits_cache(self):
        prover = _CountingProver()
        portfolio = ProverPortfolio(
            [PortfolioEntry(prover, 1.0)], proof_cache=ProofCache()
        )
        i, j, n = b.IntVar("i"), b.IntVar("j"), b.IntVar("n")
        portfolio.dispatch(
            ProofTask((("inv", b.ForAll([i], b.Lt(i, n))),), b.Lt(b.Int(0), n))
        )
        result = portfolio.dispatch(
            ProofTask((("other", b.ForAll([j], b.Lt(j, n))),), b.Lt(b.Int(0), n))
        )
        assert result.cached
        assert prover.calls == 1

    def test_no_cache_means_no_counters(self):
        prover = _CountingProver()
        portfolio = ProverPortfolio([PortfolioEntry(prover, 1.0)])
        task = ProofTask((), _lt("x", "y"))
        portfolio.dispatch(task)
        portfolio.dispatch(task)
        assert prover.calls == 2
        assert portfolio.statistics.cache_lookups == 0

    def test_restricted_copies_get_fresh_caches(self):
        portfolio = default_portfolio()
        assert portfolio.proof_cache is not None
        scaled = portfolio.scaled(0.5)
        assert scaled.proof_cache is not None
        assert scaled.proof_cache is not portfolio.proof_cache
        only = portfolio.only("smt")
        assert only.proof_cache is not None
        assert only.proof_cache is not portfolio.proof_cache
        uncached = default_portfolio(with_cache=False)
        assert uncached.proof_cache is None
        assert uncached.scaled(0.5).proof_cache is None


class TestEngineIntegration:
    def test_engine_attaches_cache_by_default(self):
        engine = VerificationEngine()
        assert engine.portfolio.proof_cache is not None

    def test_engine_can_disable_cache(self):
        engine = VerificationEngine(use_proof_cache=False)
        assert engine.portfolio.proof_cache is None

    def test_cache_never_changes_verdicts(self):
        """Same per-sequent proved/refuted verdicts with cache on and off."""
        structures = {
            cls.name: cls
            for cls in all_structures()
            if cls.name in ("Array List", "Linked List")
        }
        assert len(structures) == 2
        for cls in structures.values():
            verdicts = {}
            for use_cache in (True, False):
                engine = VerificationEngine(
                    default_portfolio(with_cache=use_cache).scaled(0.25),
                    use_proof_cache=use_cache,
                )
                report = engine.verify_class(cls)
                verdicts[use_cache] = [
                    (
                        method.method_name,
                        outcome.sequent.label,
                        outcome.dispatch.proved,
                        outcome.dispatch.refuted,
                    )
                    for method in report.methods
                    for outcome in method.outcomes
                ]
            assert verdicts[True] == verdicts[False]
