"""Tier-1 validation of the GitHub Actions pipeline.

The acceptance bar for the CI satellite is "passes a local act-style dry
run or syntax validation"; this is the syntax-validation half, kept in
tier 1 so the workflow cannot drift from the repo it tests:

* the YAML parses and has the structural shape Actions expects;
* the tier-1 job runs the exact ROADMAP tier-1 command, with coverage
  collected and uploaded as an artifact;
* the slow and fuzz jobs are gated off plain pushes (schedule /
  dispatch / label), and the fuzz job echoes its Hypothesis seed so a
  failure reproduces locally;
* the benchmark smoke step and its artifact upload stay wired to a
  script entry point that actually exists and stays runnable.
"""

from __future__ import annotations

from pathlib import Path

import yaml

REPO_ROOT = Path(__file__).resolve().parent.parent
WORKFLOW = REPO_ROOT / ".github" / "workflows" / "ci.yml"


def load_workflow() -> dict:
    data = yaml.safe_load(WORKFLOW.read_text(encoding="utf-8"))
    assert isinstance(data, dict), "workflow must be a YAML mapping"
    return data


def all_run_lines(job: dict) -> str:
    return "\n".join(
        step.get("run", "") for step in job["steps"] if isinstance(step, dict)
    )


def test_workflow_parses_and_has_required_jobs():
    data = load_workflow()
    assert data.get("name")
    # PyYAML parses the bare `on:` key as boolean True.
    triggers = data.get("on", data.get(True))
    assert isinstance(triggers, dict)
    assert "push" in triggers and "pull_request" in triggers
    assert "schedule" in triggers
    crons = [entry.get("cron") for entry in triggers["schedule"]]
    assert all(isinstance(cron, str) and len(cron.split()) == 5 for cron in crons)
    jobs = data["jobs"]
    assert {"tier1", "lint", "slow", "fuzz"} <= set(jobs)
    for name, job in jobs.items():
        assert job.get("runs-on"), f"job {name} has no runner"
        assert isinstance(job.get("steps"), list) and job["steps"], name
        assert job.get("timeout-minutes"), f"job {name} has no timeout"
        for step in job["steps"]:
            assert "run" in step or "uses" in step, (name, step)


def test_tier1_job_runs_the_roadmap_command():
    jobs = load_workflow()["jobs"]
    runs = all_run_lines(jobs["tier1"])
    # The exact tier-1 verify command from ROADMAP.md.
    assert "PYTHONPATH=src python -m pytest -x -q" in runs
    roadmap = (REPO_ROOT / "ROADMAP.md").read_text(encoding="utf-8")
    assert "python -m pytest -x -q" in roadmap


def test_tier1_pip_cache_is_keyed_on_setup_py():
    jobs = load_workflow()["jobs"]
    setup_steps = [
        step
        for step in jobs["tier1"]["steps"]
        if "setup-python" in step.get("uses", "")
    ]
    assert setup_steps, "tier1 must use actions/setup-python"
    with_block = setup_steps[0]["with"]
    assert with_block.get("cache") == "pip"
    assert with_block.get("cache-dependency-path") == "setup.py"
    assert (REPO_ROOT / "setup.py").exists()


def test_bench_smoke_step_and_artifact():
    jobs = load_workflow()["jobs"]
    runs = all_run_lines(jobs["tier1"])
    assert "benchmarks/bench_table1.py" in runs and "--smoke" in runs
    assert "--json" in runs
    uploads = [
        step
        for step in jobs["tier1"]["steps"]
        if "upload-artifact" in step.get("uses", "")
    ]
    assert any(
        "bench-smoke.json" in step["with"]["path"] for step in uploads
    ), "tier1 must upload the benchmark record"
    # The script entry the workflow calls must exist and stay arg-parsable.
    import sys

    sys.path.insert(0, str(REPO_ROOT / "benchmarks"))
    try:
        import bench_table1

        assert callable(bench_table1.main)
        assert callable(bench_table1.run_smoke)
    finally:
        sys.path.pop(0)


def test_incremental_smoke_step_and_artifact():
    """The single-edit incremental latency record rides next to the
    bench-smoke artifact on every commit."""
    jobs = load_workflow()["jobs"]
    runs = all_run_lines(jobs["tier1"])
    assert "benchmarks/bench_incremental.py" in runs and "--smoke" in runs
    assert "bench-incremental.json" in runs
    uploads = [
        step
        for step in jobs["tier1"]["steps"]
        if "upload-artifact" in step.get("uses", "")
    ]
    assert any(
        "bench-incremental.json" in step["with"]["path"] for step in uploads
    ), "tier1 must upload the incremental benchmark record"
    # The script entry the workflow calls must exist and stay arg-parsable.
    import sys

    sys.path.insert(0, str(REPO_ROOT / "benchmarks"))
    try:
        import bench_incremental

        assert callable(bench_incremental.main)
        assert callable(bench_incremental.run_smoke)
    finally:
        sys.path.pop(0)


def test_lint_job_runs_ruff_with_committed_config():
    jobs = load_workflow()["jobs"]
    runs = all_run_lines(jobs["lint"])
    assert "ruff check" in runs
    assert "ruff format --check" in runs
    assert (REPO_ROOT / "ruff.toml").exists(), "ruff config must be committed"
    # Since the one-shot format commit the format check is blocking: no
    # step of the lint job may swallow its failure.
    for step in jobs["lint"]["steps"]:
        assert not step.get("continue-on-error"), step


def test_slow_job_is_gated():
    jobs = load_workflow()["jobs"]
    slow = jobs["slow"]
    condition = slow.get("if", "")
    assert "schedule" in condition
    assert "run-slow" in condition
    assert "pull_request" in condition
    assert slow.get("needs") == "tier1"
    assert "-m slow" in all_run_lines(slow)


def test_slow_job_runs_loadgen_smoke_and_uploads_latency_record():
    """The nightly front-door load harness: smoke run + JSON artifact so
    latency percentiles (p50/p95/p99) are tracked per night."""
    jobs = load_workflow()["jobs"]
    runs = all_run_lines(jobs["slow"])
    assert "benchmarks/load_harness.py" in runs and "--smoke" in runs
    assert "loadgen-smoke.json" in runs
    uploads = [
        step
        for step in jobs["slow"]["steps"]
        if "upload-artifact" in step.get("uses", "")
    ]
    assert any(
        "loadgen-smoke.json" in step["with"]["path"] for step in uploads
    ), "slow job must upload the load-harness record"
    # The script entry the workflow calls must exist and stay importable.
    import sys

    sys.path.insert(0, str(REPO_ROOT / "benchmarks"))
    try:
        import load_harness

        assert callable(load_harness.main)
    finally:
        sys.path.pop(0)


def test_tier1_collects_and_uploads_coverage():
    jobs = load_workflow()["jobs"]
    runs = all_run_lines(jobs["tier1"])
    installs = [line for line in runs.splitlines() if "pip install" in line]
    assert any("pytest-cov" in line for line in installs)
    assert "--cov=repro" in runs
    assert "coverage.xml" in runs
    uploads = [
        step
        for step in jobs["tier1"]["steps"]
        if "upload-artifact" in step.get("uses", "")
    ]
    assert any(
        "coverage.xml" in step["with"]["path"] for step in uploads
    ), "tier1 must upload the coverage report"


def test_fuzz_job_is_gated_and_reproducible():
    """The deep fuzz runs nightly (like slow), never on plain pushes, and
    must echo its Hypothesis seed so a failure reproduces locally."""
    jobs = load_workflow()["jobs"]
    fuzz = jobs["fuzz"]
    condition = fuzz.get("if", "")
    assert "schedule" in condition
    assert "workflow_dispatch" in condition
    assert "run-fuzz" in condition
    assert fuzz.get("needs") == "tier1"
    runs = all_run_lines(fuzz)
    assert "-m fuzz" in runs
    assert "--hypothesis-seed" in runs
    # The seed is printed before pytest runs, so the log always carries it.
    assert "echo" in runs and "SEED" in runs
    # A failing run persists its shrunk regressions as an artifact.
    uploads = [
        step for step in fuzz["steps"] if "upload-artifact" in step.get("uses", "")
    ]
    assert uploads and uploads[0].get("if") == "failure()"
    assert "regressions" in uploads[0]["with"]["path"]
    # The fuzz marker the job selects is registered in pytest.ini, and
    # tier 1 deselects it.
    pytest_ini = (REPO_ROOT / "pytest.ini").read_text(encoding="utf-8")
    assert "fuzz:" in pytest_ini
    assert "not slow and not fuzz" in pytest_ini


def test_workflow_expressions_are_balanced():
    """Cheap guard against the classic broken-`${{`-interpolation commit."""
    text = WORKFLOW.read_text(encoding="utf-8")
    assert text.count("${{") == text.count("}}")
    for line in text.splitlines():
        assert "\t" not in line, "YAML must not contain tabs"
