"""Property test: the sequent generator agrees with the wlp semantics.

For random simple guarded commands, the conjunction of the generated
sequents is valid exactly when ``wlp(command, post)`` is valid (checked by
brute-force enumeration of small interpretations).  This ties the
sequent-producing verification-condition generator (Figure 7 style) to the
reference weakest-liberal-precondition semantics (Figure 5).
"""

from hypothesis import given, settings, strategies as st

from repro.gcl import SAssert, SAssume, SHavoc, schoice, sseq, sskip
from repro.gcl.wlp import wlp
from repro.logic import And, Eq, Int, IntVar, Le, Lt
from repro.logic.evaluator import all_interpretations, holds
from repro.logic.terms import free_vars
from repro.vcgen import generate_sequents

x, y, z = IntVar("x"), IntVar("y"), IntVar("z")

_atoms = st.sampled_from(
    [Lt(x, y), Le(y, x), Eq(x, Int(0)), Lt(y, Int(2)), Le(Int(0), z), Eq(y, z)]
)


@st.composite
def _commands(draw, depth=2):
    if depth == 0:
        kind = draw(st.sampled_from(["skip", "assume", "assert", "havoc"]))
        if kind == "skip":
            return sskip()
        if kind == "assume":
            return SAssume(draw(_atoms), "H")
        if kind == "assert":
            return SAssert(draw(_atoms), "G")
        return SHavoc((draw(st.sampled_from([x, y, z])),))
    kind = draw(st.sampled_from(["seq", "choice", "leaf"]))
    if kind == "leaf":
        return draw(_commands(depth=0))
    left = draw(_commands(depth=depth - 1))
    right = draw(_commands(depth=depth - 1))
    if kind == "seq":
        return sseq(left, right)
    return schoice(left, right)


def _valid(formula) -> bool:
    variables = sorted(free_vars(formula), key=lambda v: v.name)
    return all(
        holds(formula, interp)
        for interp in all_interpretations(
            variables, int_values=(-1, 0, 1), int_range=(-1, 1)
        )
    )


@given(command=_commands(), post=_atoms)
@settings(max_examples=60, deadline=None)
def test_sequents_valid_iff_wlp_valid(command, post):
    wlp_formula = wlp(command, post)
    sequents = generate_sequents(command, post=post, post_label="Post")
    sequent_conjunction = And(*[s.formula() for s in sequents])
    assert _valid(sequent_conjunction) == _valid(wlp_formula)
