"""VC generation: splitting (Figure 7), sequents, assumption-base control."""

from repro.gcl import SAssert, SAssume, SHavoc, schoice, sseq
from repro.logic import INT, IntVar
from repro.logic.parser import parse_formula
from repro.provers import default_portfolio
from repro.vcgen import (
    Sequent,
    apply_from_clause,
    generate_sequents,
    ignore_from_clause,
    relevance_filter,
    split_goal,
)

ENV = {"x": INT, "y": INT, "z": INT, "size": INT}
F = lambda text: parse_formula(text, ENV)  # noqa: E731
x, y = IntVar("x"), IntVar("y")


class TestSplitGoal:
    def test_conjunction_splits(self):
        pieces = split_goal(F("x <= y & y <= z"), "Post")
        assert len(pieces) == 2

    def test_implication_folds_hypothesis(self):
        pieces = split_goal(F("x <= y --> x <= y + 1"), "Post")
        assert len(pieces) == 1
        assert pieces[0].hypotheses and pieces[0].goal == F("x <= y + 1")

    def test_universal_introduces_fresh_constant(self):
        pieces = split_goal(F("ALL k : int. k <= k"), "Post")
        assert len(pieces) == 1
        assert not pieces[0].goal == F("ALL k : int. k <= k")

    def test_nested_structure(self):
        pieces = split_goal(F("x <= y --> (x <= z & ALL k : int. k <= k)"), "Post")
        assert len(pieces) == 2
        assert all(p.hypotheses for p in pieces)


class TestSequentGeneration:
    def test_assume_then_assert(self):
        command = sseq(SAssume(F("x <= y"), "Pre"), SAssert(F("x <= y + 1"), "Goal"))
        sequents = generate_sequents(command)
        assert len(sequents) == 1
        sequent = sequents[0]
        assert sequent.label == "Goal"
        assert ("Pre", F("x <= y")) in sequent.assumptions

    def test_assume_false_discharges_branch(self):
        command = sseq(
            SAssume(F("x ~= x"), "Dead"), SAssert(F("x <= y"), "Unreachable")
        )
        assert generate_sequents(command) == []

    def test_choice_duplicates_pending_obligations(self):
        command = sseq(
            schoice(SAssume(F("x <= y"), "Left"), SAssume(F("y <= x"), "Right")),
            SAssert(F("x <= y | y <= x"), "Goal"),
        )
        sequents = generate_sequents(command)
        assert len(sequents) == 2
        labels = {s.assumptions[0][0] for s in sequents}
        assert labels == {"Left", "Right"}

    def test_havoc_renames_downstream_occurrences(self):
        command = sseq(
            SAssume(F("x <= y"), "Before"),
            SHavoc((x,)),
            SAssert(F("x <= y"), "Goal"),
        )
        sequents = generate_sequents(command)
        assert len(sequents) == 1
        sequent = sequents[0]
        # The havoc only affects the obligation downstream of it: the goal's x
        # is renamed, the assumption keeps the original x.
        assert sequent.goal != F("x <= y")
        assert ("Before", F("x <= y")) in sequent.assumptions

    def test_trivial_sequents_are_discharged(self):
        command = sseq(SAssume(F("x <= y"), "Pre"), SAssert(F("x <= y"), "Same"))
        assert generate_sequents(command) == []

    def test_post_condition_obligation(self):
        command = SAssume(F("x <= y"), "Pre")
        sequents = generate_sequents(command, post=F("x <= y & 0 <= size"))
        # The first conjunct is syntactically identical to the assumption and
        # is discharged during splitting; only the second remains.
        assert {s.label for s in sequents} == {"Post.2"}

    def test_end_to_end_with_portfolio(self):
        command = sseq(
            SAssume(F("0 <= x"), "Pre"),
            SAssert(F("x < x + 1 & 0 <= x"), "Goal"),
        )
        portfolio = default_portfolio()
        for sequent in generate_sequents(command):
            assert portfolio.dispatch(sequent.to_task()).proved


class TestAssumptionControl:
    def _sequent(self):
        return Sequent(
            assumptions=(("Pre", F("x <= y")), ("Noise", F("0 <= size"))),
            goal=F("x <= y + 1"),
            label="Goal",
            from_hints=("Pre",),
        )

    def test_from_clause_restricts_assumptions(self):
        task = apply_from_clause(self._sequent())
        assert [name for name, _ in task.assumptions] == ["Pre"]

    def test_from_clause_can_be_ignored(self):
        task = ignore_from_clause(self._sequent())
        assert len(task.assumptions) == 2

    def test_local_assumptions_always_kept(self):
        sequent = Sequent(
            assumptions=(("Noise", F("0 <= size")),),
            goal=F("x <= y + 1"),
            label="Goal",
            from_hints=("Pre",),
            local_assumptions=(("Goal.hyp", F("x <= y")),),
        )
        task = sequent.to_task()
        assert ("Goal.hyp", F("x <= y")) in task.assumptions

    def test_relevance_filter_keeps_goal_related_assumptions(self):
        assumptions = tuple(
            (f"h{i}", F(f"size <= size + {i}")) for i in range(80)
        ) + (("Key", F("x <= y")),)
        from repro.provers.result import ProofTask

        task = ProofTask(assumptions, F("x <= y + 1"))
        filtered = relevance_filter(task, max_assumptions=10)
        names = [name for name, _ in filtered.assumptions]
        assert "Key" in names and len(names) <= 10
