"""Tier-1-safe smoke tests for the benchmark harness workloads.

Runs the exact workload functions of ``benchmarks/bench_kernel.py`` at tiny
sizes so that a refactor breaking the benchmark harness (or a pathological
slowdown turning the microbenchmarks into hangs) is caught by the fast test
suite, not only by the benchmark trajectory.  The ``bench_table1`` suite
runner is smoked the same way: a ``--jobs 2`` run over the
quickly-verifying structures under a tight wall-clock budget, plus the
persistent-cache acceptance check (a warm repeat run must be at least 5x
faster than the cold run).
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

from repro.suite import all_structures

_BENCHMARKS = Path(__file__).resolve().parent.parent / "benchmarks"
if str(_BENCHMARKS) not in sys.path:
    sys.path.insert(0, str(_BENCHMARKS))

import bench_kernel  # noqa: E402
import bench_table1  # noqa: E402

#: Structures that verify fully in well under a second each.
_FAST = ("Array List", "Cursor List", "Linked List", "Circular List")


def _fast_structures():
    return [cls for cls in all_structures() if cls.name in _FAST]


def test_interning_workload_smoke():
    assert bench_kernel.workload_interning(depth=8, repeats=2) > 0


def test_substitute_workload_smoke():
    result = bench_kernel.workload_substitute(depth=8)
    assert result.is_formula
    assert "z" not in {v for v in result._free_names}


def test_simplify_workload_smoke():
    assert bench_kernel.workload_simplify(depth=8).is_formula


def test_wlp_workload_smoke():
    # Depth 12 would be 2^12 naive wlp branches; the memoized pass must
    # return quickly because both choice arms share the same subcommand.
    assert bench_kernel.workload_wlp(depth=12).is_formula


def test_deep_formula_is_shared():
    first = bench_kernel.build_deep_formula(6)
    second = bench_kernel.build_deep_formula(6)
    assert first is second


def test_table1_jobs2_smoke():
    """``bench_table1`` with ``--jobs 2`` on the fast structures, under a
    tight budget, with verdicts identical to the sequential runner."""
    structures = _fast_structures()
    start = time.monotonic()
    seq_engine, seq_reports = bench_table1.run_suite(jobs=1, structures=structures)
    par_engine, par_reports = bench_table1.run_suite(jobs=2, structures=structures)
    elapsed = time.monotonic() - start
    assert elapsed < 60.0, f"smoke budget blown: {elapsed:.1f}s"
    for seq, par in zip(seq_reports, par_reports):
        assert [
            (o.sequent.label, o.proved, o.prover)
            for m in seq.methods
            for o in m.outcomes
        ] == [
            (o.sequent.label, o.proved, o.prover)
            for m in par.methods
            for o in m.outcomes
        ]
    stats = par_engine.parallel_stats_total
    assert stats is not None
    assert stats.dispatched + stats.hits_memory + stats.duplicates_folded == (
        stats.sequents_total
    )
    assert (
        seq_engine.portfolio.statistics.sequents_proved
        == par_engine.portfolio.statistics.sequents_proved
    )


def test_warm_persistent_cache_speedup(tmp_path):
    """Acceptance: a warm persistent cache makes a repeat run >= 5x faster.

    The margin is generous (the measured ratio is >20x: the warm run
    dispatches nothing and never even spawns the worker pool), so timing
    jitter on a loaded machine cannot flip the assertion.
    """
    structures = _fast_structures()
    start = time.monotonic()
    cold_engine, cold_reports = bench_table1.run_suite(
        jobs=2, structures=structures, cache_dir=tmp_path
    )
    cold = time.monotonic() - start
    assert cold_engine.portfolio.statistics.cache_hits_disk == 0

    start = time.monotonic()
    warm_engine, warm_reports = bench_table1.run_suite(
        jobs=2, structures=structures, cache_dir=tmp_path
    )
    warm = time.monotonic() - start
    stats = warm_engine.portfolio.statistics
    assert stats.cache_hits_disk > 0
    assert stats.per_prover == {}  # every sequent answered from disk
    assert warm_engine.parallel_stats_total.dispatched == 0
    for cold_report, warm_report in zip(cold_reports, warm_reports):
        assert [
            (o.sequent.label, o.proved, o.prover)
            for m in cold_report.methods
            for o in m.outcomes
        ] == [
            (o.sequent.label, o.proved, o.prover)
            for m in warm_report.methods
            for o in m.outcomes
        ]
    assert warm * 5 <= cold, f"cold={cold:.2f}s warm={warm:.2f}s"


def test_table1_suite_scheduled_smoke(tmp_path):
    """``bench_table1``'s suite-scheduled runner on the fast structures:
    same verdicts as the per-class runner, sane scheduling accounting."""
    structures = _fast_structures()
    per_class_engine, per_class_reports = bench_table1.run_suite(
        jobs=2, structures=structures
    )
    suite_engine, suite_reports = bench_table1.run_suite(
        jobs=2, structures=structures, suite_schedule=True
    )
    for per_class_report, suite_report in zip(per_class_reports, suite_reports):
        assert [
            (o.sequent.label, o.proved, o.prover)
            for m in per_class_report.methods
            for o in m.outcomes
        ] == [
            (o.sequent.label, o.proved, o.prover)
            for m in suite_report.methods
            for o in m.outcomes
        ]
    stats = suite_engine.last_suite_stats
    assert stats is not None and stats.jobs == 2
    assert stats.schedule_order[0] == "Circular List"  # costliest fast class
    assert stats.dispatched + stats.hits_memory + stats.hits_disk + (
        stats.duplicates_folded
    ) == stats.sequents_total


def test_bench_table1_smoke_mode_json(tmp_path, capsys):
    """The CI artifact entry point: ``--smoke --json PATH`` writes a valid
    record, prints it, and exits 0 when everything verifies."""
    import json

    out = tmp_path / "bench-smoke.json"
    assert bench_table1.main(["--smoke", "--json", str(out)]) == 0
    record = json.loads(out.read_text())
    assert record["mode"] == "smoke" and record["jobs"] == 2
    assert record == json.loads(capsys.readouterr().out)
    names = {cls["name"] for cls in record["classes"]}
    assert names == set(bench_table1.SMOKE_STRUCTURES)
    assert all(cls["verified"] for cls in record["classes"])
    dispatch = record["dispatch"]
    assert (
        dispatch["dispatched"]
        + dispatch["hits_memory"]
        + dispatch["hits_disk"]
        + dispatch["duplicates_folded"]
        == dispatch["sequents_total"]
    )
    assert record["wall_seconds"] > 0
    assert record["counters"]["sequents_proved"] >= dispatch["sequents_total"]
    # The adaptive plan rides along: one entry per class, each naming the
    # cost-model rung that priced it (a cold CI run is all "static").
    plan = {entry["name"]: entry for entry in record["schedule_plan"]}
    assert set(plan) == set(bench_table1.SMOKE_STRUCTURES)
    assert all(
        entry["hint_source"] in ("measured", "profile", "static", "default")
        for entry in plan.values()
    )
