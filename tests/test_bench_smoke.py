"""Tier-1-safe smoke test for the kernel microbenchmark workloads.

Runs the exact workload functions of ``benchmarks/bench_kernel.py`` at tiny
sizes so that a refactor breaking the benchmark harness (or a pathological
slowdown turning the microbenchmarks into hangs) is caught by the fast test
suite, not only by the benchmark trajectory.
"""

from __future__ import annotations

import sys
from pathlib import Path

_BENCHMARKS = Path(__file__).resolve().parent.parent / "benchmarks"
if str(_BENCHMARKS) not in sys.path:
    sys.path.insert(0, str(_BENCHMARKS))

import bench_kernel  # noqa: E402


def test_interning_workload_smoke():
    assert bench_kernel.workload_interning(depth=8, repeats=2) > 0


def test_substitute_workload_smoke():
    result = bench_kernel.workload_substitute(depth=8)
    assert result.is_formula
    assert "z" not in {v for v in result._free_names}


def test_simplify_workload_smoke():
    assert bench_kernel.workload_simplify(depth=8).is_formula


def test_wlp_workload_smoke():
    # Depth 12 would be 2^12 naive wlp branches; the memoized pass must
    # return quickly because both choice arms share the same subcommand.
    assert bench_kernel.workload_wlp(depth=12).is_formula


def test_deep_formula_is_shared():
    first = bench_kernel.build_deep_formula(6)
    second = bench_kernel.build_deep_formula(6)
    assert first is second
