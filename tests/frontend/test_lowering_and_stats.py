"""Frontend: class models, lowering, old-elimination, calls, statistics."""

import pytest

from repro.frontend import count_proof_constructs, count_statements, lower_method
from repro.frontend.lower import LoweringError
from repro.gcl import format_simple
from repro.gcl.desugar import desugar
from repro.provers import default_portfolio
from repro.suite.common import StructureBuilder
from repro.verifier import class_statistics, strip_proofs_from_class


def build_account():
    s = StructureBuilder("Account")
    s.concrete("balance", "int")
    s.concrete("owner", "obj")
    s.ghost("deposits", "int set")
    s.spec("worth", "int", "balance")
    s.invariant("NonNegative", "0 <= balance")

    m = s.method(
        "deposit",
        params="amount : int",
        requires="0 < amount",
        modifies="balance, deposits",
        ensures="worth = old worth + amount & old balance in deposits",
    )
    m.assign("balance", "balance + amount")
    m.ghost_assign("deposits", "deposits Un {old balance}")
    m.note(
        "Grew",
        "old balance < balance",
        from_hints="Pre, OldSnapshot, AssignTmp, Assign_balance",
    )
    m.done()

    m = s.method(
        "payout",
        params="amount : int",
        returns="int",
        requires="0 <= amount & amount <= balance",
        modifies="balance",
        ensures="result = old balance - amount & worth = result",
    )
    m.assign("balance", "balance - amount")
    m.returns("balance")
    m.done()

    m = s.method(
        "depositTwice",
        params="amount : int",
        requires="0 < amount",
        modifies="balance, deposits",
        ensures="worth = old worth + amount + amount",
        public=True,
    )
    m.call("deposit", "amount")
    m.call("deposit", "amount")
    m.done()
    return s.build()


class TestLowering:
    def test_spec_variable_expansion(self):
        account = build_account()
        lowering = lower_method(account, account.method("deposit"))
        rendered = format_simple(desugar(lowering.command))
        # ``worth`` is defined as ``balance`` and must not survive expansion.
        assert "worth" not in rendered

    def test_old_elimination_snapshot(self):
        account = build_account()
        lowering = lower_method(account, account.method("deposit"))
        assert "balance" in lowering.old_snapshot
        rendered = format_simple(desugar(lowering.command))
        assert "old_balance" in rendered

    def test_exit_asserts_include_invariants(self):
        account = build_account()
        lowering = lower_method(account, account.method("deposit"))
        labels = [label for label, _ in lowering.exit_asserts]
        assert "Post" in labels and "NonNegativeRestored" in labels

    def test_call_is_verified_against_contract(self):
        account = build_account()
        lowering = lower_method(account, account.method("depositTwice"))
        rendered = format_simple(desugar(lowering.command))
        assert "deposit_Pre" in rendered and "deposit_Post" in rendered

    def test_call_to_unknown_method_is_rejected(self):
        s = StructureBuilder("Broken")
        s.concrete("balance", "int")
        m = s.method("oops")
        m.call("missing")
        m.done()
        broken = s.build()
        with pytest.raises(KeyError):
            lower_method(broken, broken.method("oops"))

    def test_field_write_requires_reference_field(self):
        s = StructureBuilder("BadField")
        s.concrete("size", "int")
        m = s.method("poke", params="o : obj")
        m.field_write("size", "o", "o")
        m.done()
        cls = s.build()
        with pytest.raises(LoweringError):
            lower_method(cls, cls.method("poke"))

    def test_verification_of_lowered_methods(self):
        account = build_account()
        portfolio = default_portfolio()
        from repro.verifier import VerificationEngine

        engine = VerificationEngine(portfolio)
        report = engine.verify_method(account, account.method("deposit"))
        assert report.verified, [o.sequent.label for o in report.failed_sequents]
        report = engine.verify_method(account, account.method("payout"))
        assert report.verified

    def test_null_checks_inserted_for_field_reads(self):
        s = StructureBuilder("Node")
        s.concrete("next", "obj => obj")
        s.concrete("head", "obj")
        m = s.method("step", requires="head ~= null", modifies="head")
        m.assign("head", "next[head]")
        m.done()
        cls = s.build()
        lowering = lower_method(cls, cls.method("step"))
        simple = desugar(lowering.command)
        rendered = format_simple(simple)
        assert "NullCheck" in rendered


class TestStatistics:
    def test_statement_and_construct_counts(self):
        account = build_account()
        deposit = account.method("deposit")
        assert count_statements(deposit) == 1  # the ghost assign and note are spec-only
        constructs = count_proof_constructs(deposit)
        assert constructs.get("note") == 1
        assert constructs.get("note_with_from") == 1

    def test_class_statistics(self):
        stats = class_statistics(build_account())
        assert stats.methods == 3
        assert stats.spec_vars == 1
        assert stats.local_spec_vars == 1
        assert stats.invariants == 1
        assert stats.construct("note") == 1

    def test_strip_proofs(self):
        stripped = strip_proofs_from_class(build_account())
        assert class_statistics(stripped).construct("note") == 0
        # Contracts and invariants stay.
        assert len(stripped.invariants) == 1
